"""``star-compare``: diff two ``star-bench --json`` result dumps.

Reproduction hygiene: before accepting a change that touches the
simulator, rerun the suite and compare against the archived baseline::

    star-bench --json before.json
    ...change...
    star-bench --json after.json
    star-compare before.json after.json --tolerance 0.02

Exit status 0 means every shared numeric cell agrees within the
relative tolerance; 1 lists the drifted cells. New/removed experiments
or rows are reported but are not failures by themselves (use
``--strict`` to make them so).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple


def load_results(path: str) -> Dict[str, dict]:
    with open(path) as handle:
        payload = json.load(handle)
    return {entry["experiment"]: entry for entry in payload}


def _row_key(row: dict, columns: List[str]) -> str:
    return str(row.get(columns[0], "?")) if columns else "?"


def _numeric(value) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    return None


def compare_results(before: Dict[str, dict], after: Dict[str, dict],
                    tolerance: float) -> Tuple[List[str], List[str]]:
    """Returns (drifts, structural notes)."""
    drifts: List[str] = []
    notes: List[str] = []
    for name in sorted(set(before) | set(after)):
        if name not in before:
            notes.append("experiment %s only in the new results" % name)
            continue
        if name not in after:
            notes.append("experiment %s disappeared" % name)
            continue
        old, new = before[name], after[name]
        columns = old.get("columns", [])
        old_rows = {
            _row_key(row, columns): row for row in old.get("rows", [])
        }
        new_rows = {
            _row_key(row, columns): row for row in new.get("rows", [])
        }
        for key in sorted(set(old_rows) | set(new_rows)):
            if key not in old_rows or key not in new_rows:
                notes.append("%s: row %r only on one side" % (name, key))
                continue
            for column in columns:
                old_value = _numeric(old_rows[key].get(column))
                new_value = _numeric(new_rows[key].get(column))
                if old_value is None or new_value is None:
                    continue
                scale = max(abs(old_value), abs(new_value), 1e-12)
                if abs(new_value - old_value) / scale > tolerance:
                    drifts.append(
                        "%s [%s] %s: %.6g -> %.6g"
                        % (name, key, column, old_value, new_value)
                    )
    return drifts, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="star-compare",
        description="Diff two star-bench --json result dumps.",
    )
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative tolerance (default 2%%)")
    parser.add_argument("--strict", action="store_true",
                        help="structural differences also fail")
    args = parser.parse_args(argv)

    drifts, notes = compare_results(
        load_results(args.before), load_results(args.after),
        args.tolerance,
    )
    for note in notes:
        print("note:", note)
    for drift in drifts:
        print("DRIFT:", drift)
    if not drifts and not (args.strict and notes):
        print("results agree within %.1f%% tolerance"
              % (args.tolerance * 100))
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
