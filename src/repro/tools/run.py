"""``star-run``: run one workload under one scheme and report.

The single-run counterpart of ``star-bench``: pick a workload, a
scheme and a machine size; optionally interleave threads, enable
start-gap wear leveling, replay a captured trace, crash + recover at
the end, and audit the machine's invariants.

Examples::

    star-run --workload btree --scheme star --operations 1000 --crash
    star-run --workload hash --scheme anubis --threads 4
    star-run --trace mytrace.txt.gz --scheme star --wear-level 100
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import sim_config
from repro.schemes import SIT_SCHEMES
from repro.sim.endurance import wear_report
from repro.sim.machine import Machine
from repro.sim.validate import audit_machine
from repro.workloads.capture import load_trace
from repro.workloads.registry import (
    ALL_WORKLOADS,
    make_threaded_trace,
    make_workload,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="star-run",
        description="Run one workload under one persistence scheme.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--workload", choices=ALL_WORKLOADS,
                        default="hash")
    source.add_argument("--trace", metavar="FILE",
                        help="replay a captured trace instead")
    parser.add_argument("--scheme", choices=sorted(SIT_SCHEMES),
                        default="star")
    parser.add_argument("--operations", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--threads", type=int, default=1,
                        help="interleave N workload threads")
    parser.add_argument("--memory-mb", type=int, default=64)
    parser.add_argument("--cache-kb", type=int, default=64,
                        help="metadata cache size")
    parser.add_argument("--wear-level", type=int, metavar="INTERVAL",
                        default=0,
                        help="enable start-gap wear leveling with the "
                             "given gap-write interval")
    parser.add_argument("--crash", action="store_true",
                        help="crash at the end and run recovery")
    parser.add_argument("--audit", action="store_true",
                        help="audit machine invariants after the run")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = sim_config(
        memory_bytes=args.memory_mb * 1024 ** 2,
        metadata_cache_bytes=args.cache_kb * 1024,
    )
    nvm = None
    if args.wear_level:
        from repro.mem.wearlevel import WearLevelingNVM

        nvm = WearLevelingNVM(config.num_data_lines, args.wear_level)
    machine = Machine(config, scheme=args.scheme, nvm=nvm)

    if args.trace:
        ops = load_trace(args.trace)
        source = "trace %s" % args.trace
    elif args.threads > 1:
        ops = make_threaded_trace(
            args.workload, config.num_data_lines,
            threads=args.threads, operations=args.operations,
            seed=args.seed,
        )
        source = "%s x%d threads" % (args.workload, args.threads)
    else:
        ops = make_workload(
            args.workload, config.num_data_lines,
            operations=args.operations, seed=args.seed,
        ).ops()
        source = args.workload
    machine.run(ops)

    if args.audit:
        findings = audit_machine(machine)
        if findings:
            for finding in findings:
                print("AUDIT:", finding)
            return 1
        print("audit: all invariants hold")

    recovery = None
    if args.crash:
        machine.crash()
        recovery = machine.recover()

    result = machine.result(source, recovery=recovery)
    print("run: %s under %s" % (source, args.scheme))
    print("  instructions        %d" % result.instructions)
    print("  IPC                 %.3f" % result.ipc)
    print("  NVM writes          %d (data %d, meta %d, ra %d, st %d)"
          % (result.nvm_writes,
             result.stats.get("nvm.data_writes", 0),
             result.stats.get("nvm.meta_writes", 0),
             result.stats.get("nvm.ra_writes", 0),
             result.stats.get("nvm.st_writes", 0)))
    print("  NVM reads           %d" % result.nvm_reads)
    print("  energy              %.1f uJ" % (result.energy_nj / 1000))
    print("  dirty metadata      %.0f%%" % (100 * result.dirty_fraction))
    if result.adr_hit_ratio:
        print("  ADR hit ratio       %.1f%%"
              % (100 * result.adr_hit_ratio))
    wear = wear_report(machine.nvm)
    if wear.total_writes:
        print("  max line wear       %d (imbalance %.1fx, region %s)"
              % (wear.max_wear, wear.imbalance, wear.hottest_line[0]))
    if recovery is not None:
        print("  recovery            %d lines, %d reads + %d writes, "
              "%.1f us, verified=%s, exact=%s"
              % (recovery.restored_lines, recovery.nvm_reads,
                 recovery.nvm_writes, recovery.recovery_time_ns / 1000,
                 recovery.verified, machine.oracle_check(recovery)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
