"""The Anubis baseline for the SGX integrity tree (ASIT, Section II-E).

Anubis mirrors the metadata cache in a shadow-table (ST) region of NVM:
every memory write that modifies a cached metadata node (a user-data
write bumping its counter block, or a metadata eviction bumping the
evicted node's parent) also writes the ST slot shadowing that node — one
extra NVM line write per memory write, which is the 2x write traffic of
Fig. 11.

Recovery scans the whole ST region (it is sized like the metadata cache,
so recovery time scales with *cache size* rather than with the number of
dirty lines — the Fig. 14(b) contrast with STAR) and reinstates every
shadowed node.

This reproduction keeps the traffic and recovery-cost model faithful and
simplifies one thing: an ST entry logically stores the shadowed node's
address, counter LSBs and MAC packed into 64 bytes; here it holds the
full counter tuple, skipping the MSB/LSB recombination that STAR's
recovery demonstrates. Anubis' own root-persisting verification is not
replicated; the scheme reports recovery as verified and the test oracle
checks restored values directly.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.schemes.base import PersistenceScheme, RecoveryReport
from repro.tree.geometry import NodeId
from repro.tree.node import CachedNode


class ShadowEntry(NamedTuple):
    """One shadow-table line: the latest update of a cached node.

    A ``NamedTuple`` rather than a dataclass: one entry is minted per
    shadowed memory write (the scheme's defining 2x traffic), so its
    construction sits on the hot path of every Anubis run.
    """

    meta_index: int
    counters: Tuple[int, ...]


class AnubisScheme(PersistenceScheme):
    """Shadow-table persistence: +1 NVM write per memory write."""

    name = "anubis"
    supports_sit_recovery = True
    # on_parent_modified only writes the ST region + a counter — it
    # never probes or mutates the metadata cache, so batched same-line
    # write runs stay valid under it
    parent_hook_is_cache_neutral = True

    def __init__(self) -> None:
        super().__init__()
        self._slot_of: Dict[int, int] = {}
        self._free_ways: Dict[int, List[int]] = {}

    def attach(self, controller) -> None:
        super().attach(controller)
        cache = controller.meta_cache
        self._slot_of.clear()
        self._free_ways = {
            index: list(range(cache.ways))
            for index in range(cache.num_sets)
        }

    # ------------------------------------------------------------------
    # ST slot management: the ST mirrors the cache's set/way structure
    # ------------------------------------------------------------------
    def on_cache_install(self, meta_index: int) -> None:
        set_index = self.controller.meta_cache.set_index(meta_index)
        way = self._free_ways[set_index].pop()
        self._slot_of[meta_index] = (
            set_index * self.controller.meta_cache.ways + way
        )

    def on_cache_evict(self, meta_index: int) -> None:
        slot = self._slot_of.pop(meta_index)
        set_index, way = divmod(slot, self.controller.meta_cache.ways)
        self._free_ways[set_index].append(way)
        # an empty way shadows nothing: the slot's tag becomes invalid.
        # Without this, a stale entry could outlive its node's eviction
        # and shadow older counters than a newer entry written after the
        # node was re-fetched into a different way.
        self.controller.nvm.clear_st(slot)

    # ------------------------------------------------------------------
    # the extra write: shadow every modification of a cached node
    # ------------------------------------------------------------------
    def on_parent_modified(self, parent: Optional[NodeId],
                           node: CachedNode, slot: int) -> None:
        if parent is None:
            return  # the SIT root lives on chip; nothing to shadow
        controller = self.controller
        meta_index = controller.geometry.meta_index(parent)
        st_slot = self._slot_of[meta_index]
        controller.nvm.write_st(
            st_slot, ShadowEntry(meta_index, node.snapshot())
        )
        controller.stats.add("anubis.st_writes")

    # ------------------------------------------------------------------
    # recovery: scan the whole ST region, reinstate every entry
    # ------------------------------------------------------------------
    def recover(self, machine) -> RecoveryReport:
        nvm = machine.nvm
        config = machine.config
        geometry = machine.controller.geometry
        auth = machine.controller.auth
        registers = machine.registers
        stats = nvm.stats
        reads_before = nvm.total_reads()
        writes_before = nvm.total_writes()

        capacity = config.metadata_cache.num_lines
        entries: Dict[int, ShadowEntry] = {}
        with stats.span("recovery.anubis.scan", slots=capacity):
            for st_slot in range(capacity):
                entry = nvm.read_st(st_slot)
                if isinstance(entry, ShadowEntry):
                    entries[entry.meta_index] = entry
        stats.observe("recovery.stale_batch", len(entries))

        restored: Dict[int, Tuple[int, ...]] = {
            line: entry.counters for line, entry in entries.items()
        }
        with stats.span("recovery.anubis.reinstate",
                        lines=len(entries)):
            for line in sorted(entries):
                node_id = geometry.node_at(line)
                nvm.read_meta(line)  # Anubis reads the shadowed node
                parent_counter = self._parent_counter(
                    geometry, nvm, registers, restored, node_id
                )
                image = auth.make_node_image(
                    node_id, restored[line], parent_counter
                )
                nvm.write_meta(line, image)
                stats.event("recover_line", meta_index=line,
                            level=node_id[0])

        reads = nvm.total_reads() - reads_before
        writes = nvm.total_writes() - writes_before
        return RecoveryReport(
            scheme=self.name,
            stale_lines=len(entries),
            restored_lines=len(entries),
            nvm_reads=reads,
            nvm_writes=writes,
            verified=True,
            recovery_time_ns=(
                (reads + writes) * config.recovery_line_access_ns
            ),
            restored=restored,
            st_restored_lines=len(entries),
        )

    @staticmethod
    def _parent_counter(geometry, nvm, registers,
                        restored: Dict[int, Tuple[int, ...]],
                        node_id: NodeId) -> int:
        if geometry.is_top_level(node_id):
            return registers.sit_root.counters[node_id[1]]
        parent_id = geometry.parent_of(node_id)
        parent_line = geometry.meta_index(parent_id)
        slot = geometry.slot_in_parent(node_id)
        if parent_line in restored:
            return restored[parent_line][slot]
        parent_image, _touched = nvm.read_meta(parent_line)
        return parent_image.counters[slot]
