"""The persistence-scheme interface.

The secure memory controller implements the mechanism every evaluated
scheme shares: counter-mode encryption, the lazy SGX integrity tree, the
metadata cache and its eviction cascade. A :class:`PersistenceScheme`
customizes what *extra* persistence work happens around those events and
how (whether) the security metadata are recovered after a crash.

Hooks and the events that fire them:

========================  ====================================================
hook                      fired when
========================  ====================================================
``on_dirty_transition``   a cached metadata line flips clean<->dirty
``on_parent_modified``    a parent counter increments (data write or child
                          eviction) — the modification STAR coalesces and
                          Anubis shadows
``on_data_persist``       a user-data line (+ MAC side-band) was written
``on_metadata_persist``   a metadata line was written to NVM
``after_data_write``      a data write completed (strict persistence flushes
                          the whole branch here)
``on_cache_install`` /    metadata cache slot management (Anubis' shadow
``on_cache_evict``        table mirrors cache slots)
``on_crash``              power fails: flush whatever the scheme keeps in ADR
========================  ====================================================

Telemetry: every hook runs with the machine's
:class:`~repro.util.stats.Stats` at hand (``self.controller.stats``),
whose registry also carries histograms, spans and the structured event
log — see :mod:`repro.obs` and ``docs/observability.md`` for the naming
conventions a scheme should follow (prefix scheme-private metrics with
the scheme name, e.g. ``anubis.st_writes``). During :meth:`recover`,
use ``machine.nvm.stats`` so recovery telemetry lands in the separate
recovery namespace the machine reports under
``RunResult.extras["telemetry"]["recovery"]``.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING, Tuple

from repro.errors import RecoveryError
from repro.tree.geometry import NodeId
from repro.tree.node import CachedNode, DataLineImage, NodeImage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.controller import SecureMemoryController


@dataclass
class RecoveryReport:
    """Outcome of one post-crash recovery run."""

    scheme: str
    stale_lines: int = 0
    restored_lines: int = 0
    nvm_reads: int = 0
    nvm_writes: int = 0
    verified: bool = True
    recovery_time_ns: float = 0.0
    restored: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    """meta_index -> restored counter tuple (test oracle)."""

    ra_lines_cleared: int = 0
    """Non-zero recovery-area index lines zeroed after verification
    (STAR): counted NVM writes on the recovery critical path."""

    st_restored_lines: int = 0
    """Lines reinstated from a shadow table (Anubis ST; Phoenix uses it
    for tree nodes only)."""

    probed_blocks: int = 0
    """Counter blocks examined by Osiris-style probing (Phoenix)."""

    probed_stale_lines: int = 0
    """Probed counter blocks found stale (persisted NVM copy behind the
    probed value) — kept separate from ST-recovered ``stale_lines`` so
    the two recovery mechanisms are not conflated."""

    @property
    def recovery_time_s(self) -> float:
        return self.recovery_time_ns / 1e9

    @property
    def line_accesses(self) -> int:
        return self.nvm_reads + self.nvm_writes


class PersistenceScheme(ABC):
    """Base class: every hook defaults to 'do nothing extra'."""

    name: str = "abstract"
    supports_sit_recovery: bool = False

    parent_hook_is_cache_neutral: bool = False
    """Whether an overridden :meth:`on_parent_modified` is guaranteed
    never to touch the metadata cache (probe, pin, install, evict or
    persist through the controller). The batched epoch engine
    (:mod:`repro.sim.batch`) may only preaggregate same-counter-block
    write runs when this holds — a hook that reaches back into the
    cache would invalidate the run's residency/LRU assumptions.
    Schemes whose hook only emits side-band NVM traffic (e.g. Anubis'
    shadow-table writes) opt in by setting this to ``True``."""

    def __init__(self) -> None:
        self.controller: Optional["SecureMemoryController"] = None

    def attach(self, controller: "SecureMemoryController") -> None:
        """Bind the scheme to its controller (called once at build)."""
        self.controller = controller

    # ------------------------------------------------------------------
    # runtime hooks (all optional)
    # ------------------------------------------------------------------
    def on_dirty_transition(self, meta_index: int,
                            became_dirty: bool) -> None:
        """A cached metadata line changed dirty state."""

    def on_parent_modified(self, parent: Optional[NodeId],
                           node: CachedNode, slot: int) -> None:
        """A parent counter was incremented (``parent is None`` = root)."""

    def on_data_persist(self, address: int, image: DataLineImage) -> None:
        """A user-data line reached NVM."""

    def on_metadata_persist(self, node: NodeId, image: NodeImage) -> None:
        """A metadata line reached NVM."""

    def after_data_write(self, address: int, counter_block: NodeId) -> None:
        """A data write completed (post-encryption, post-NVM-write)."""

    def on_cache_install(self, meta_index: int) -> None:
        """A metadata line became resident in the metadata cache."""

    def on_cache_evict(self, meta_index: int) -> None:
        """A metadata line left the metadata cache."""

    def on_crash(self) -> None:
        """Power failed: perform battery-backed flushes."""

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self, machine) -> RecoveryReport:
        """Restore stale metadata after a crash.

        ``machine`` is the crashed :class:`~repro.sim.machine.Machine`;
        schemes read its NVM and on-chip registers. Schemes that cannot
        recover SIT metadata raise :class:`RecoveryError`.
        """
        raise RecoveryError(
            "scheme %r does not support SIT recovery" % self.name
        )


