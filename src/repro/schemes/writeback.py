"""The write-back baseline (WB, Section IV-A).

An ideal write-back metadata cache: only LRU evictions reach NVM and no
extra persistence work is done. All evaluated numbers are normalized to
this scheme. Because modified metadata can die in the cache, WB cannot
recover after a crash — attempting to do so raises.
"""

from __future__ import annotations

from repro.schemes.base import PersistenceScheme


class WriteBackScheme(PersistenceScheme):
    """No extra writes, no recovery: the performance baseline."""

    name = "wb"
    supports_sit_recovery = False
