"""Strict persistence (Section IV-A).

Every user-data write propagates eagerly: the counter block and every SIT
ancestor up to the root child level are written through to NVM. Nothing
is ever stale, so no recovery is needed — at the cost of roughly
tree-height× write amplification, which is what Fig. 11 shows and why the
paper deems strict persistence unacceptable for NVM endurance.
"""

from __future__ import annotations

from repro.schemes.base import PersistenceScheme, RecoveryReport
from repro.tree.geometry import NodeId


class StrictPersistenceScheme(PersistenceScheme):
    """Write-through of the whole modified SIT branch on every write."""

    name = "strict"
    supports_sit_recovery = True  # trivially: nothing is ever stale

    def after_data_write(self, address: int,
                         counter_block: NodeId) -> None:
        self.controller.persist_branch(counter_block)

    def recover(self, machine) -> RecoveryReport:
        """Nothing is stale under strict persistence."""
        return RecoveryReport(scheme=self.name, stale_lines=0,
                              restored_lines=0, verified=True)
