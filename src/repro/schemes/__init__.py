"""Persistence schemes: the paper's four evaluated schemes plus the
counter-only / Bonsai-Merkle-tree extension baselines.

The SIT-capable schemes (usable with the secure memory controller):

* :class:`WriteBackScheme` — the WB baseline; no recovery.
* :class:`StrictPersistenceScheme` — eager branch write-through.
* :class:`AnubisScheme` — shadow-table, 2x writes.
* :class:`~repro.core.star.StarScheme` — the paper's contribution.

Osiris and Triad-NVM cannot recover an SGX integrity tree
(Section II-E); they live in :mod:`repro.bmt` together with the
Bonsai-Merkle-tree substrate they were designed for, as extension
baselines used by the examples and tests.
"""

from repro.core.star import StarScheme
from repro.schemes.anubis import AnubisScheme, ShadowEntry
from repro.schemes.base import PersistenceScheme, RecoveryReport
from repro.schemes.phoenix import PhoenixScheme
from repro.schemes.strict import StrictPersistenceScheme
from repro.schemes.writeback import WriteBackScheme

SIT_SCHEMES = {
    "wb": WriteBackScheme,
    "strict": StrictPersistenceScheme,
    "anubis": AnubisScheme,
    "star": StarScheme,
    "phoenix": PhoenixScheme,
}
"""Name -> class for the paper's four evaluated schemes plus the
Phoenix concurrent-work baseline (Section II-E)."""


def make_scheme(name: str) -> PersistenceScheme:
    """Instantiate one of the paper's evaluated schemes by name."""
    try:
        return SIT_SCHEMES[name]()
    except KeyError:
        raise ValueError(
            "unknown scheme %r (choose from %s)"
            % (name, ", ".join(sorted(SIT_SCHEMES)))
        ) from None


__all__ = [
    "AnubisScheme",
    "PersistenceScheme",
    "PhoenixScheme",
    "RecoveryReport",
    "SIT_SCHEMES",
    "ShadowEntry",
    "StarScheme",
    "StrictPersistenceScheme",
    "WriteBackScheme",
    "make_scheme",
]
