"""The Phoenix baseline (Section II-E, "concurrent work").

Phoenix combines the two prior ideas: counter blocks are *not* shadowed
on every write — they are persisted only every Nth modification and
recovered Osiris-style by probing counter candidates against the
per-line data MACs — while the intermediate SIT nodes keep Anubis'
shadow-table treatment. Compared with Anubis this removes the ST write
that accompanied every *data* write, leaving only the (much rarer) ST
writes for tree-node modifications.

The paper positions STAR against Phoenix: "unlike Phoenix, our STAR
removes the extra writes of the whole tree, including the counter
blocks and intermediate tree nodes". This implementation reproduces
that contrast: Phoenix lands between Anubis and STAR in write traffic,
and its recovery must probe every counter block (it cannot tell stale
from fresh ones) where STAR walks its bitmap index.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.schemes.anubis import AnubisScheme
from repro.schemes.base import RecoveryReport
from repro.tree.geometry import NodeId
from repro.tree.node import CachedNode


class PhoenixScheme(AnubisScheme):
    """Osiris-relaxed counter blocks + Anubis ST for tree nodes."""

    name = "phoenix"
    supports_sit_recovery = True
    # unlike Anubis, the parent hook persists counter blocks through
    # the controller every Nth write — that re-enters the metadata
    # cache, so batched write runs must stay disabled
    parent_hook_is_cache_neutral = False

    def __init__(self, persist_stride: int = 4) -> None:
        super().__init__()
        if persist_stride < 1:
            raise ValueError("persist stride must be >= 1")
        self.persist_stride = persist_stride
        self._block_writes: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # runtime: shadow only the tree levels; relax the counter blocks
    # ------------------------------------------------------------------
    def on_parent_modified(self, parent: Optional[NodeId],
                           node: CachedNode, slot: int) -> None:
        if parent is None:
            return
        if parent[0] == 0:
            # a counter block modified by a data write: no ST write;
            # persist it every Nth modification to bound the probe
            # distance (the Osiris relaxation)
            meta_index = self.controller.geometry.meta_index(parent)
            count = self._block_writes.get(meta_index, 0) + 1
            if count >= self.persist_stride:
                self._block_writes[meta_index] = 0
                self.controller.persist_metadata_line(parent)
                self.controller.stats.add("phoenix.periodic_persists")
            else:
                self._block_writes[meta_index] = count
            return
        super().on_parent_modified(parent, node, slot)
        self.controller.stats.add("phoenix.st_writes")

    # ------------------------------------------------------------------
    # recovery: ST for tree nodes, Osiris probing for counter blocks
    # ------------------------------------------------------------------
    def recover(self, machine) -> RecoveryReport:
        node_report = super().recover(machine)
        nvm = machine.nvm
        geometry = machine.controller.geometry
        auth = machine.controller.auth
        reads_before = nvm.total_reads()
        writes_before = nvm.total_writes()

        restored = dict(node_report.restored)
        probe_failures = 0
        probed_stale = 0
        probed_blocks = geometry.level_counts[0]
        stats = nvm.stats
        with stats.span("recovery.phoenix.probe",
                        blocks=probed_blocks) as probe_span:
            for index in range(probed_blocks):
                block_id = (0, index)
                line = geometry.meta_index(block_id)
                stale, _touched = nvm.read_meta(line)
                counters, failures = self._probe_block(
                    machine, block_id, stale
                )
                probe_failures += failures
                if counters != stale.counters:
                    # the probed counters moved past the persisted copy:
                    # this block really was stale at the crash
                    probed_stale += 1
                elif line not in restored:
                    continue  # nothing moved since the last persist
                restored[line] = counters
                stats.event("recover_line", meta_index=line, level=0)
                parent_counter = self._parent_counter_from(
                    machine, restored, block_id
                )
                image = auth.make_node_image(block_id, counters,
                                             parent_counter)
                nvm.write_meta(line, image)
            if probe_span is not None:
                probe_span.attrs["failures"] = probe_failures
                probe_span.attrs["stale"] = probed_stale

        reads = (nvm.total_reads() - reads_before) + \
            node_report.nvm_reads
        writes = (nvm.total_writes() - writes_before) + \
            node_report.nvm_writes
        # stale_lines is the count of lines that actually went stale
        # (ST-shadowed tree nodes + probed-stale counter blocks) — NOT
        # len(restored), which also counts fresh blocks rewritten only
        # because their ST twin was reinstated. The old conflation made
        # Phoenix's reported stale set track restored-line volume.
        return RecoveryReport(
            scheme=self.name,
            stale_lines=node_report.stale_lines + probed_stale,
            restored_lines=len(restored),
            nvm_reads=reads,
            nvm_writes=writes,
            verified=node_report.verified and probe_failures == 0,
            recovery_time_ns=(
                (reads + writes)
                * machine.config.recovery_line_access_ns
            ),
            restored=restored,
            st_restored_lines=node_report.restored_lines,
            probed_blocks=probed_blocks,
            probed_stale_lines=probed_stale,
        )

    def _probe_block(self, machine, block_id: NodeId,
                     stale) -> Tuple[Tuple[int, ...], int]:
        """Osiris-style reconstruction of one counter block."""
        nvm = machine.nvm
        geometry = machine.controller.geometry
        auth = machine.controller.auth
        counters = list(stale.counters)
        failures = 0
        children = geometry.children_of(block_id)
        for slot in range(geometry.arity):
            if slot >= len(children):
                continue
            image = nvm.read_data(children[slot])
            if image is None:
                if stale.counters[slot] != 0:
                    # the persisted counter says this line was written,
                    # but it is gone: detectable erasure. (An erasure
                    # *before* the block's first persist is not — one of
                    # the gaps STAR's cache-tree closes.)
                    failures += 1
                continue
            found = None
            for delta in range(self.persist_stride + 1):
                candidate = stale.counters[slot] + delta
                if auth.verify_data_image(children[slot], image,
                                          candidate):
                    found = candidate
                    break
            if found is None:
                failures += 1
            else:
                nvm.stats.observe(
                    "phoenix.probe_distance",
                    found - stale.counters[slot],
                )
                counters[slot] = found
        return tuple(counters), failures

    @staticmethod
    def _parent_counter_from(machine, restored, node_id: NodeId) -> int:
        geometry = machine.controller.geometry
        if geometry.is_top_level(node_id):
            return machine.registers.sit_root.counters[node_id[1]]
        parent_id = geometry.parent_of(node_id)
        parent_line = geometry.meta_index(parent_id)
        slot = geometry.slot_in_parent(node_id)
        if parent_line in restored:
            return restored[parent_line][slot]
        parent_image, _touched = machine.nvm.read_meta(parent_line)
        return parent_image.counters[slot]

    def on_cache_evict(self, meta_index: int) -> None:
        super().on_cache_evict(meta_index)
        self._block_writes.pop(meta_index, None)
