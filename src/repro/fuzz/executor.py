"""Case execution and the parallel campaign driver.

One case runs entirely single-process: materialize the workload trace,
replay it up to the sampled crash point (pausing once mid-run so replay
attacks can take their snapshots), power-fail the machine, optionally
tamper with the NVM, recover, and hand the outcome to the oracle stack.

Campaigns fan the case list out over a ``multiprocessing`` pool using
the *spawn* start method — the same cold-start a reproducing developer
gets — so that a failure seen in a worker is guaranteed to replay
byte-identically from its serialized :class:`FuzzCase` alone.

``DEFECTS`` holds test-only fault injections (e.g. a recovery that
forgets to compare the cache-tree root). They exist to prove the oracle
stack catches real detection bugs end-to-end; the CLI exposes them
behind ``--inject-defect`` for self-tests.
"""

from __future__ import annotations

import multiprocessing
import random
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import SystemConfig, small_config
from repro.errors import RecoveryError
from repro.fuzz.attacks import make_attack
from repro.fuzz.oracle import Verdict, judge
from repro.obs.flight import arm_flight_recorder, flight_tail
from repro.fuzz.sampling import CampaignSpec, FuzzCase, sample_cases
from repro.schemes.base import RecoveryReport
from repro.sim.crash import Attacker
from repro.sim.machine import Machine
from repro.sim.validate import audit_machine
from repro.util.stats import Stats
from repro.workloads.registry import make_workload
from repro.workloads.trace import Op


def campaign_config() -> SystemConfig:
    """The fixed machine every case runs on.

    A single shared configuration keeps case specs small and replay
    trivial; :func:`repro.config.small_config` gives deep evictions
    with short traces, which is exactly the stress a crash fuzzer wants.
    """
    return small_config()


def materialize_trace(case: FuzzCase,
                      config: Optional[SystemConfig] = None) -> List[Op]:
    """The case's full deterministic op list."""
    if config is None:
        config = campaign_config()
    workload = make_workload(
        case.workload, config.num_data_lines,
        operations=case.operations, seed=case.seed,
    )
    return list(workload.ops())


def _defect_skip_root_verify(report: RecoveryReport) -> None:
    """Test-only bug: recovery 'forgets' to compare the cache-tree
    root, reporting success regardless — the §III-E detection hole the
    oracle stack must catch via its golden shadow copy."""
    report.verified = True


DEFECTS: Dict[str, Callable[[RecoveryReport], None]] = {
    "skip-root-verify": _defect_skip_root_verify,
}


@dataclass
class CaseResult:
    """Everything the corpus (and the minimizer) needs about one run."""

    case: FuzzCase
    ops_total: int = 0
    crash_at: int = 0
    tampered: bool = False
    tamper_desc: Optional[str] = None
    detected_by: Optional[str] = None
    verified: Optional[bool] = None
    stale_lines: int = 0
    restored_lines: int = 0
    readback_lines: int = 0
    violations: List[Dict[str, str]] = field(default_factory=list)
    events_tail: List[Dict] = field(default_factory=list)
    """Flight-recorder tail: the last events before the verdict (no
    wall-clock fields, so serial and pooled runs serialize
    identically). Empty on results recorded before the recorder
    existed."""

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    @property
    def signature(self) -> tuple:
        """The failure equivalence class used by the minimizer."""
        return tuple(sorted({v["kind"] for v in self.violations}))

    def to_dict(self) -> Dict:
        payload = {
            "case": self.case.to_dict(),
            "ops_total": self.ops_total,
            "crash_at": self.crash_at,
            "tampered": self.tampered,
            "tamper_desc": self.tamper_desc,
            "detected_by": self.detected_by,
            "verified": self.verified,
            "stale_lines": self.stale_lines,
            "restored_lines": self.restored_lines,
            "readback_lines": self.readback_lines,
            "violations": self.violations,
            "events_tail": self.events_tail,
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "CaseResult":
        fields = dict(payload)
        case = FuzzCase.from_dict(fields.pop("case"))
        fields.pop("type", None)
        return cls(case=case, **fields)


def run_case(case: FuzzCase, ops: Optional[Sequence[Op]] = None,
             defect: Optional[str] = None,
             sanitize: bool = False) -> CaseResult:
    """Execute one case single-process and judge it.

    ``ops`` overrides the workload-derived trace (the minimizer's
    entry point); the crash then happens after the last op. ``defect``
    names a :data:`DEFECTS` fault injection. ``sanitize`` runs the case
    on a ``Machine(sanitize=True)``; a sanitizer trip surfaces as an
    ``exception`` violation like any other simulator failure.
    """
    config = campaign_config()
    if ops is None:
        trace = materialize_trace(case, config)
        crash_at = case.crash_index(len(trace))
        ops = trace[:crash_at]
    else:
        ops = list(ops)
        crash_at = len(ops)
    result = CaseResult(case=case, ops_total=len(ops), crash_at=crash_at)
    machine = Machine(config, scheme=case.scheme, telemetry=False,
                      sanitize=sanitize)
    # flight recorder: keep the ring-buffered event log running on the
    # otherwise telemetry-dark machine so failures carry their tail
    arm_flight_recorder(machine.stats)
    try:
        _execute(machine, case, ops, defect, result)
    except Exception:
        summary = traceback.format_exc(limit=4).strip().splitlines()
        result.violations.append({
            "kind": "exception",
            "detail": "harness/simulator raised: %s" % summary[-1],
        })
    if result.failed:
        result.events_tail = flight_tail(machine)
    return result


def _execute(machine: Machine, case: FuzzCase, ops: Sequence[Op],
             defect: Optional[str], result: CaseResult) -> None:
    attacker = Attacker(machine.nvm)
    attack = make_attack(case.attack) if case.attack else None

    prepare_at = case.prepare_index(len(ops))
    machine.run(ops[:prepare_at])
    if attack is not None and attack.needs_prepare:
        attack.prepare(
            machine, attacker,
            random.Random("fuzz-prepare:%d" % case.attack_seed),
        )
    machine.run(ops[prepare_at:])

    pre_violations = audit_machine(machine)
    machine.crash()

    if not machine.scheme.supports_sit_recovery:
        # the WB baseline: crashing loses metadata by design — the
        # contract under test is just that it *says so*
        verdict = Verdict()
        for finding in pre_violations:
            verdict.add("pre-crash-audit", finding)
        try:
            machine.recover()
            verdict.add(
                "unexpected-recovery",
                "scheme %r recovered despite not supporting SIT "
                "recovery" % case.scheme,
            )
        except RecoveryError:
            pass
        result.violations = verdict.violations
        return

    golden = {
        line: machine.nvm.peek_data(line)
        for line in machine.nvm.data_lines()
    }
    tamper_desc = None
    if attack is not None:
        tamper_desc = attack.apply(
            machine, attacker,
            random.Random("fuzz-apply:%d" % case.attack_seed),
        )
    report = machine.recover()
    if defect is not None:
        DEFECTS[defect](report)

    result.tampered = tamper_desc is not None
    result.tamper_desc = tamper_desc
    result.verified = report.verified
    result.stale_lines = report.stale_lines
    result.restored_lines = report.restored_lines

    verdict = judge(machine, case, report, golden, tamper_desc,
                    pre_violations)
    result.detected_by = verdict.detected_by
    result.readback_lines = verdict.readback_lines
    result.violations = verdict.violations


# ----------------------------------------------------------------------
# the parallel campaign driver
# ----------------------------------------------------------------------
_WORKER_TELEMETRY: Optional[Dict] = None
"""Per-process live-telemetry state (worker stats + heartbeat writer),
created lazily on the first case a pool worker executes."""


def _worker_telemetry(telemetry) -> Optional[Dict]:
    global _WORKER_TELEMETRY
    if telemetry is None:
        return None
    if _WORKER_TELEMETRY is None:
        from repro.lab.clock import Clock
        from repro.obs.live import HeartbeatWriter

        directory, interval_s = telemetry
        worker = multiprocessing.current_process().name
        stats = Stats()
        _WORKER_TELEMETRY = {
            "stats": stats,
            "cases": 0,
            "writer": HeartbeatWriter(
                directory, worker, clock=Clock(),
                interval_s=interval_s, stats=stats,
            ),
        }
    return _WORKER_TELEMETRY


def _ship_heartbeat(telemetry, result: "CaseResult") -> None:
    """Count one finished case into this worker's registry and
    publish a (throttled) snapshot; failures always force a beat."""
    state = _worker_telemetry(telemetry)
    if state is None:
        return
    stats = state["stats"]
    _count(stats, result)
    state["cases"] += 1
    state["writer"].write(
        registry=stats.registry,
        progress={"cases": state["cases"],
                  "last_case": result.case.case_id},
        force=result.failed,
    )


def _campaign_worker(payload) -> Dict:
    """Top-level (picklable) pool entry point."""
    case_dict, defect, sanitize, telemetry = payload
    case = FuzzCase.from_dict(case_dict)
    result = run_case(case, defect=defect, sanitize=sanitize)
    _ship_heartbeat(telemetry, result)
    return result.to_dict()


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign run."""

    spec: CampaignSpec
    results: List[CaseResult]
    stats: Stats

    @property
    def failures(self) -> List[CaseResult]:
        return [result for result in self.results if result.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict:
        return {
            "cases": len(self.results),
            "failures": len(self.failures),
            "tampered": sum(1 for r in self.results if r.tampered),
            "detected": {
                by: sum(1 for r in self.results if r.detected_by == by)
                for by in ("recovery", "on-use", "audit", "healed")
            },
            "counters": self.stats.snapshot(),
        }


def run_campaign(spec: CampaignSpec, jobs: int = 1,
                 progress: Optional[Callable[[CaseResult], None]] = None,
                 sanitize: bool = False,
                 telemetry_dir=None,
                 heartbeat_interval_s: float = 1.0) -> CampaignResult:
    """Run every sampled case, serially or across a process pool.

    ``telemetry_dir`` opts into the live plane: every executing process
    (pool workers, or this process when serial) publishes heartbeat +
    metric snapshots there for ``star-top`` — see
    :mod:`repro.obs.live`. Heartbeats never influence results.
    """
    global _WORKER_TELEMETRY
    _WORKER_TELEMETRY = None  # fresh serial-mode state per campaign
    telemetry = None
    if telemetry_dir is not None:
        telemetry = (str(telemetry_dir), heartbeat_interval_s)
    cases = sample_cases(spec)
    payloads = [
        (case.to_dict(), spec.defect, sanitize, telemetry)
        for case in cases
    ]
    stats = Stats()
    results: List[CaseResult] = []

    def consume(payload: Dict) -> None:
        result = CaseResult.from_dict(payload)
        results.append(result)
        _count(stats, result)
        if progress is not None:
            progress(result)

    if jobs <= 1:
        for item in payloads:
            consume(_campaign_worker(item))
    else:
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=jobs) as pool:
            for payload in pool.imap_unordered(
                _campaign_worker, payloads, chunksize=1
            ):
                consume(payload)
    results.sort(key=lambda result: result.case.index)
    return CampaignResult(spec=spec, results=results, stats=stats)


def _count(stats: Stats, result: CaseResult) -> None:
    stats.add("fuzz.cases")
    stats.add("fuzz.scheme.%s" % result.case.scheme)
    stats.add("fuzz.workload.%s" % result.case.workload)
    if result.case.attack:
        stats.add("fuzz.attack.%s" % result.case.attack)
    if result.tampered:
        stats.add("fuzz.tamper_applied")
    if result.detected_by:
        stats.add("fuzz.detected.%s" % result.detected_by.replace("-", "_"))
    if result.failed:
        stats.add("fuzz.failures")
        stats.add("fuzz.violations", len(result.violations))
