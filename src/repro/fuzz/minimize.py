"""Failure minimization: crash-point binary search + trace delta-debug.

A failing case arrives as (workload-derived op list, crash point,
attack). Minimization shrinks it to the smallest op list that still
produces the *same failure signature* (the set of oracle violation
kinds), in two stages:

1. **Crash-point binary search** — find the shortest failing trace
   prefix. Crash-consistency failures are usually monotone in the
   prefix (once the problematic persist pattern exists, later ops
   rarely fix it), so a binary search gets within one op cheaply; if
   the final probe disagrees (non-monotone case), fall back to the full
   prefix.
2. **ddmin** — Zeller's delta debugging over the surviving ops, with
   doubling granularity, under a global re-execution budget.

The result is written as a ``<case>.trace.gz`` + ``<case>.json``
sidecar pair that :func:`replay_artifact` re-executes single-process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fuzz.executor import materialize_trace, run_case
from repro.fuzz.sampling import FuzzCase
from repro.workloads.capture import load_trace, save_trace
from repro.workloads.trace import Op

ARTIFACT_VERSION = 1


@dataclass
class MinimizationResult:
    """Outcome of minimizing one failing case."""

    case: FuzzCase
    signature: tuple
    ops: List[Op]
    original_ops: int
    runs: int
    defect: Optional[str] = None
    events_tail: Optional[List[Dict]] = None
    """Flight-recorder tail of the minimized repro (the last events
    before the oracle fired), shipped in the ``.json`` sidecar."""

    @property
    def minimized_ops(self) -> int:
        return len(self.ops)


class _Budget:
    def __init__(self, max_runs: int) -> None:
        self.max_runs = max_runs
        self.runs = 0

    def spend(self) -> bool:
        if self.runs >= self.max_runs:
            return False
        self.runs += 1
        return True


def _fails_like(case: FuzzCase, ops: Sequence[Op], target: tuple,
                defect: Optional[str], budget: _Budget) -> bool:
    if not budget.spend():
        return False
    return run_case(case, ops=ops, defect=defect).signature == target


def _minimal_failing_prefix(case: FuzzCase, ops: List[Op], target: tuple,
                            defect: Optional[str],
                            budget: _Budget) -> List[Op]:
    """Binary-search the crash point (stage 1)."""
    low, high = 1, len(ops)
    while low < high:
        mid = (low + high) // 2
        if _fails_like(case, ops[:mid], target, defect, budget):
            high = mid
        else:
            low = mid + 1
    prefix = ops[:low]
    if _fails_like(case, prefix, target, defect, budget):
        return prefix
    return ops  # non-monotone failure: keep the full prefix


def _ddmin(case: FuzzCase, ops: List[Op], target: tuple,
           defect: Optional[str], budget: _Budget) -> List[Op]:
    """Classic ddmin over the op list (stage 2)."""
    granularity = 2
    while len(ops) >= 2:
        chunk = max(1, len(ops) // granularity)
        chunks = [ops[i:i + chunk] for i in range(0, len(ops), chunk)]
        reduced = False
        for index in range(len(chunks)):
            complement = [
                op for j, piece in enumerate(chunks) if j != index
                for op in piece
            ]
            if complement and _fails_like(case, complement, target,
                                          defect, budget):
                ops = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(ops):
                break
            granularity = min(len(ops), granularity * 2)
        if budget.runs >= budget.max_runs:
            break
    return ops


def minimize_failure(case: FuzzCase, defect: Optional[str] = None,
                     max_runs: int = 200
                     ) -> Optional[MinimizationResult]:
    """Shrink a failing case; ``None`` if it no longer fails."""
    trace = materialize_trace(case)
    crash_at = case.crash_index(len(trace))
    ops = trace[:crash_at]
    original = run_case(case, ops=ops, defect=defect)
    if not original.failed:
        return None
    target = original.signature
    budget = _Budget(max_runs)
    ops = _minimal_failing_prefix(case, ops, target, defect, budget)
    ops = _ddmin(case, ops, target, defect, budget)
    # one extra run of the final minimized trace captures the flight-
    # recorder tail that belongs to the artifact being written (the
    # original tail describes the unminimized trace)
    final = run_case(case, ops=ops, defect=defect)
    return MinimizationResult(
        case=case, signature=target, ops=ops,
        original_ops=crash_at, runs=budget.runs, defect=defect,
        events_tail=final.events_tail,
    )


# ----------------------------------------------------------------------
# repro artifacts
# ----------------------------------------------------------------------
def write_artifacts(result: MinimizationResult,
                    directory) -> Tuple[Path, Path]:
    """Persist a minimized failure as ``.trace.gz`` + ``.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    trace_path = directory / ("%s.trace.gz" % result.case.case_id)
    meta_path = directory / ("%s.json" % result.case.case_id)
    save_trace(
        result.ops, trace_path,
        header="minimized repro for %s\nsignature: %s"
               % (result.case.case_id, ", ".join(result.signature)),
    )
    meta = {
        "type": "artifact",
        "version": ARTIFACT_VERSION,
        "case": result.case.to_dict(),
        "trace": trace_path.name,
        "crash_at": len(result.ops),
        "original_ops": result.original_ops,
        "minimized_ops": len(result.ops),
        "signature": list(result.signature),
        "defect": result.defect,
        "runs": result.runs,
        "events_tail": result.events_tail or [],
    }
    meta_path.write_text(json.dumps(meta, indent=2, sort_keys=True)
                         + "\n", encoding="ascii")
    return trace_path, meta_path


def load_artifact(meta_path) -> Tuple[FuzzCase, List[Op], Optional[str],
                                      tuple]:
    """Read back a minimized-failure artifact pair."""
    meta_path = Path(meta_path)
    meta = json.loads(meta_path.read_text(encoding="ascii"))
    case = FuzzCase.from_dict(meta["case"])
    ops = list(load_trace(meta_path.parent / meta["trace"]))
    return case, ops, meta.get("defect"), tuple(meta["signature"])


def replay_artifact(meta_path) -> Tuple[bool, tuple]:
    """Re-execute an artifact single-process.

    Returns (reproduced the recorded signature?, observed signature).
    """
    case, ops, defect, signature = load_artifact(meta_path)
    result = run_case(case, ops=ops, defect=defect)
    return result.signature == signature, result.signature
