"""The differential oracle stack.

After recovery, a case is judged by independent evidence, none of which
trusts the scheme's own bookkeeping:

1. **Invariant audit** — :func:`repro.sim.validate.audit_machine` on the
   live machine just before the crash, and again on a machine rebooted
   from the recovered NVM + registers (covers the §III-C ADR/recovery
   -area state and NVM image authenticity).
2. **Golden readback** — every data line touched before the crash is
   read back through a rebooted controller (exercising MAC checks
   exactly as a real restart would) and its NVM image compared against
   a golden shadow copy taken at the instant of the crash.
3. **Exact restore** — :meth:`Machine.oracle_check`: every pre-crash
   dirty metadata line restored to its exact cached counters.
4. **Detection** — when tampering was injected, *some* detector must
   fire: recovery verification (cache-tree root mismatch), an integrity
   error on readback ("caught on use", §III-F), or a failed NVM-image
   authentication in the audit. A replay that recovery provably healed
   (final state byte-identical to golden, all checks clean) is counted
   as ``healed``, not as a violation — the system restored the truth.

Any other outcome is a violation; a tampered case with no detector
firing and a wrong final state is the big one: ``undetected-tamper``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import IntegrityError
from repro.sim.validate import audit_machine


@dataclass
class Verdict:
    """The oracle stack's judgement of one executed case."""

    violations: List[Dict[str, str]] = field(default_factory=list)
    detected_by: Optional[str] = None
    """How injected tampering was caught: ``recovery`` (root mismatch),
    ``on-use`` (IntegrityError on readback), ``audit`` (NVM image fails
    authentication — the check a fetch would perform), or ``healed``
    (recovery provably restored the exact pre-crash state)."""
    readback_lines: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    def add(self, kind: str, detail: str) -> None:
        self.violations.append({"kind": kind, "detail": detail})


def _reboot(machine):
    """A fresh machine on the recovered NVM + registers."""
    from repro.sim.machine import Machine

    return Machine(machine.config, scheme=machine.scheme.name,
                   registers=machine.registers, nvm=machine.nvm,
                   telemetry=False)


def _readback(fresh, golden) -> "tuple[List[int], List[int], int]":
    """Read every pre-crash data line back through the controller.

    Returns (lines raising IntegrityError, lines whose NVM image
    diverged from the golden shadow copy, lines read).
    """
    integrity_failures: List[int] = []
    divergent: List[int] = []
    lines = sorted(set(golden) | set(fresh.nvm.data_lines()))
    for line in lines:
        try:
            fresh.controller.read_data(line)
        except IntegrityError:
            integrity_failures.append(line)
            continue
        if fresh.nvm.peek_data(line) != golden.get(line):
            divergent.append(line)
    return integrity_failures, divergent, len(lines)


def judge(machine, case, report, golden, tamper_desc: Optional[str],
          pre_violations: List[str]) -> Verdict:
    """Run the post-recovery oracle stack over one case."""
    verdict = Verdict()
    for finding in pre_violations:
        verdict.add("pre-crash-audit", finding)
    tampered = tamper_desc is not None

    if not tampered:
        if not report.verified:
            verdict.add(
                "false-positive",
                "honest recovery failed verification (%s)" % case.case_id,
            )
            return verdict
        if not machine.oracle_check(report):
            verdict.add(
                "restore-mismatch",
                "recovery did not restore every pre-crash dirty line "
                "exactly",
            )
        fresh = _reboot(machine)
        for finding in audit_machine(fresh):
            verdict.add("post-recovery-audit", finding)
        failures, divergent, verdict.readback_lines = _readback(
            fresh, golden
        )
        for line in failures:
            verdict.add(
                "readback-integrity",
                "data line %d failed integrity verification after an "
                "honest recovery" % line,
            )
        for line in divergent:
            verdict.add(
                "data-divergence",
                "data line %d diverged from the golden shadow copy "
                "after an honest recovery" % line,
            )
        return verdict

    # tampering was injected: some detector must fire
    if not report.verified:
        verdict.detected_by = "recovery"
        return verdict
    fresh = _reboot(machine)
    post_audit = audit_machine(fresh)
    failures, divergent, verdict.readback_lines = _readback(fresh, golden)
    if failures:
        verdict.detected_by = "on-use"
        return verdict
    if any("fails verification" in finding for finding in post_audit):
        # a metadata fetch would reject this image: latent but caught
        verdict.detected_by = "audit"
        return verdict
    silently_wrong = (
        bool(divergent)
        or bool(post_audit)
        or not machine.oracle_check(report)
    )
    if silently_wrong:
        verdict.add(
            "undetected-tamper",
            "%s went undetected and left wrong state "
            "(divergent data lines: %s)" % (tamper_desc, divergent),
        )
    else:
        verdict.detected_by = "healed"
    return verdict
