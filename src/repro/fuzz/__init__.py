"""``repro.fuzz``: crash-consistency fuzzing campaigns.

The package turns the existing primitives — :mod:`repro.sim.crash`
attacks, :func:`repro.sim.validate.audit_machine`, workload trace
capture — into a campaign engine: sample (workload, scheme, seed)
cases, run each to a random crash point, optionally tamper with the
NVM, recover, and differentially judge the outcome against invariant
audits, a golden shadow copy, and the scheme's detection contract.
Campaigns fan out over a spawn-based process pool, stream failures to
a JSONL corpus, and auto-minimize them to replayable ``.trace.gz``
artifacts. The ``star-fuzz`` CLI (:mod:`repro.fuzz.cli`) fronts it.
"""

from repro.fuzz.attacks import ATTACK_MATRIX, eligible_attacks, make_attack
from repro.fuzz.corpus import (
    CorpusFormatError,
    CorpusWriter,
    load_failures,
    load_summary,
    read_corpus,
)
from repro.fuzz.executor import (
    DEFECTS,
    CampaignResult,
    CaseResult,
    campaign_config,
    materialize_trace,
    run_campaign,
    run_case,
)
from repro.fuzz.minimize import (
    MinimizationResult,
    load_artifact,
    minimize_failure,
    replay_artifact,
    write_artifacts,
)
from repro.fuzz.oracle import Verdict, judge
from repro.fuzz.sampling import CampaignSpec, FuzzCase, sample_cases

__all__ = [
    "ATTACK_MATRIX",
    "CampaignResult",
    "CampaignSpec",
    "CaseResult",
    "CorpusFormatError",
    "CorpusWriter",
    "DEFECTS",
    "FuzzCase",
    "MinimizationResult",
    "Verdict",
    "campaign_config",
    "eligible_attacks",
    "judge",
    "load_artifact",
    "load_failures",
    "load_summary",
    "make_attack",
    "materialize_trace",
    "minimize_failure",
    "read_corpus",
    "replay_artifact",
    "run_campaign",
    "run_case",
    "sample_cases",
    "write_artifacts",
]
