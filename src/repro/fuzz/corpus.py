"""The JSONL failure corpus.

A campaign streams one record per failing case into a line-oriented
JSON file, closed with a summary record. Records are self-contained:
a failure embeds the full :class:`FuzzCase` spec, so ``star-fuzz
replay`` can re-execute it single-process with nothing but the corpus
file. Files ending in ``.gz`` are transparently compressed, matching
the trace-capture convention.

Record types::

    {"type": "campaign", "spec": {...}}          # header
    {"type": "failure",  "case": {...}, ...}     # one per failing case
    {"type": "summary",  "cases": N, ...}        # trailer
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import ReproError
from repro.fuzz.executor import CaseResult

PathLike = Union[str, Path]


class CorpusFormatError(ReproError, ValueError):
    """A corpus file held a line that is not a JSON record."""


def _open(path: PathLike, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


class CorpusWriter:
    """Append-only JSONL sink for one campaign's failures."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = _open(self.path, "w")
        self.failures = 0

    def _emit(self, record: Dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def write_header(self, spec_dict: Dict) -> None:
        self._emit({"type": "campaign", "spec": spec_dict})

    def write_failure(self, result: CaseResult) -> None:
        record = result.to_dict()
        record["type"] = "failure"
        self._emit(record)
        self.failures += 1

    def write_summary(self, summary: Dict) -> None:
        self._emit(dict(summary, type="summary"))

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "CorpusWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_corpus(path: PathLike) -> Iterator[Dict]:
    """Stream every record of a corpus file."""
    with _open(path, "r") as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorpusFormatError(
                    "%s: line %d: %s" % (path, number, exc)
                ) from None
            if not isinstance(record, dict) or "type" not in record:
                raise CorpusFormatError(
                    "%s: line %d: record without a type" % (path, number)
                )
            yield record


def load_failures(path: PathLike) -> List[CaseResult]:
    """Every failure record of a corpus, as :class:`CaseResult`."""
    return [
        CaseResult.from_dict(record)
        for record in read_corpus(path)
        if record["type"] == "failure"
    ]


def load_summary(path: PathLike) -> Optional[Dict]:
    """The trailing summary record, if the campaign finished."""
    summary = None
    for record in read_corpus(path):
        if record["type"] == "summary":
            summary = record
    return summary
