"""Randomized attack drawing over the :class:`~repro.sim.crash.Attacker`
repertoire.

Each attack picks its target deterministically from the case's attack
RNG, applies the tampering through the NVM's stat-free tamper interface,
and reports a human-readable description of what it did (or ``None``
when the crashed machine offered no eligible target — e.g. a replay with
no differing snapshot, or an MSB shift with nothing stale).

The per-scheme repertoire (:data:`ATTACK_MATRIX`) encodes which attacks
each scheme *claims* to detect — the §III-E/F contract the oracle
enforces:

* **star** — the full repertoire: recovery-related tampering flips the
  cache-tree root during recovery; recovery-unrelated tampering is
  caught on use (MAC check).
* **anubis** / **strict** — no root commitment, but metadata is never
  reconstructed from attacker-reachable state: direct data tampering
  and replays are caught on first use.
* **phoenix** — MAC corruption starves the Osiris-style counter probe
  (detected at recovery). Replays inside the persist stride are its
  *documented* blind spot (``test_phoenix.py``), so they are excluded
  here rather than reported as fuzzing failures.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Type

from repro.core.synergy import LSB_MASK, LSB_SPAN
from repro.sim.crash import Attacker


class Attack:
    """One parameterized tampering of a crashed machine's NVM."""

    name: str = "abstract"
    needs_prepare: bool = False
    """Whether the attack snapshots pre-crash NVM state (replays)."""

    def prepare(self, machine, attacker: Attacker,
                rng: random.Random) -> None:
        """Record mid-run state the post-crash tampering will need."""

    def apply(self, machine, attacker: Attacker,
              rng: random.Random) -> Optional[str]:
        """Tamper with the crashed NVM; describe it, or ``None`` if no
        eligible target existed."""
        raise NotImplementedError


def _stale_lines(machine) -> List[int]:
    return sorted(machine.pre_crash_dirty)


class MetaMsbAttack(Attack):
    """Shift a stale node's persisted counter MSBs beyond the LSB
    window, so reconstruction lands on a wrong counter with certainty."""

    name = "meta_msb"

    def apply(self, machine, attacker, rng):
        candidates = [line for line in _stale_lines(machine)
                      if machine.nvm.meta_is_touched(line)]
        if not candidates:
            return None
        line = rng.choice(candidates)
        slot = rng.randrange(machine.controller.geometry.arity)
        if not attacker.corrupt_meta_counter(line, slot,
                                             delta=LSB_SPAN):
            return None
        return "meta line %d slot %d MSBs shifted by %d" % (
            line, slot, LSB_SPAN)


class DataLsbAttack(Attack):
    """Flip synergized LSBs of a written child of a stale counter
    block: its parent reconstructs to a wrong counter."""

    name = "data_lsbs"

    def apply(self, machine, attacker, rng):
        geometry = machine.controller.geometry
        targets = []
        for line in _stale_lines(machine):
            node = geometry.node_at(line)
            if node[0] != 0:
                continue
            for child in geometry.children_of(node):
                if machine.nvm.peek_data(child) is not None:
                    targets.append(child)
        if not targets:
            return None
        child = rng.choice(sorted(set(targets)))
        flip = 1 + rng.randrange(LSB_MASK)
        if not attacker.corrupt_data_lsbs(child, flip=flip):
            return None
        return "data line %d LSBs flipped by %#x" % (child, flip)


class DataMacAttack(Attack):
    """Corrupt a data line's MAC side-band (recovery-unrelated for
    STAR: caught on first use; starves Phoenix's counter probe)."""

    name = "data_mac"

    def apply(self, machine, attacker, rng):
        lines = machine.nvm.data_lines()
        if not lines:
            return None
        line = rng.choice(lines)
        flip = 1 + rng.randrange(2 ** 20)
        if not attacker.corrupt_data_mac(line, flip=flip):
            return None
        return "data line %d MAC flipped by %#x" % (line, flip)


class MetaLsbAttack(Attack):
    """Flip the LSB field of a metadata child of a stale tree node."""

    name = "meta_lsbs"

    def apply(self, machine, attacker, rng):
        geometry = machine.controller.geometry
        targets = []
        for line in _stale_lines(machine):
            level, _index = node = geometry.node_at(line)
            if level < 1:
                continue
            for child in geometry.children_of(node):
                child_line = geometry.meta_index((level - 1, child))
                if machine.nvm.meta_is_touched(child_line):
                    targets.append(child_line)
        if not targets:
            return None
        child_line = rng.choice(sorted(set(targets)))
        flip = 1 + rng.randrange(LSB_MASK)
        if not attacker.corrupt_meta_lsbs(child_line, flip=flip):
            return None
        return "meta line %d LSBs flipped by %#x" % (child_line, flip)


class BitmapHideAttack(Attack):
    """Clear the recovery-area bitmap bit of a stale line, hiding it
    from the recovery walk (§III-C tampering)."""

    name = "bitmap_hide"

    def apply(self, machine, attacker, rng):
        index = machine.scheme.bitmap.index
        if index.is_on_chip(1):
            return None  # single-layer index never leaves the chip
        stale = _stale_lines(machine)
        if not stale:
            return None
        line = rng.choice(stale)
        l1_line, bit = index.l1_position(line)
        attacker.corrupt_bitmap_line((1, l1_line), flip_bit=bit)
        return "bitmap bit for stale meta line %d cleared" % line


class BitmapFakeAttack(Attack):
    """Set the bitmap bit of a clean (persisted) line, faking an extra
    stale location."""

    name = "bitmap_fake"

    def apply(self, machine, attacker, rng):
        index = machine.scheme.bitmap.index
        if index.is_on_chip(1):
            return None
        stale = set(_stale_lines(machine))
        candidates = [
            line for line in range(machine.controller.geometry.total_nodes)
            if line not in stale and machine.nvm.meta_is_touched(line)
        ]
        if not candidates:
            return None
        line = rng.choice(candidates)
        l1_line, bit = index.l1_position(line)
        attacker.corrupt_bitmap_line((1, l1_line), flip_bit=bit)
        return "bitmap bit for clean meta line %d faked stale" % line


class ReplayDataAttack(Attack):
    """Section III-E's replay: substitute an old but internally
    consistent (data, MAC, LSB) tuple recorded mid-run."""

    name = "replay_data"
    needs_prepare = True
    snapshot_budget = 256

    def prepare(self, machine, attacker, rng):
        lines = machine.nvm.data_lines()
        if len(lines) > self.snapshot_budget:
            lines = rng.sample(lines, self.snapshot_budget)
        for line in sorted(lines):
            attacker.snapshot_data_line(line)

    def apply(self, machine, attacker, rng):
        nvm = machine.nvm
        geometry = machine.controller.geometry
        candidates = [
            line for line, old in sorted(attacker._data_snapshots.items())
            if old is not None and old != nvm.peek_data(line)
        ]
        if not candidates:
            return None
        # prefer children of stale counter blocks: those replays feed
        # the LSB reconstruction and only the cache-tree catches them
        stale = set(_stale_lines(machine))

        def block_is_stale(line: int) -> bool:
            block = geometry.counter_block_for(line)
            return geometry.meta_index(block) in stale

        preferred = [line for line in candidates if block_is_stale(line)]
        line = rng.choice(preferred if preferred else candidates)
        if not attacker.replay_data_line(line):
            return None
        return "data line %d replayed with its recorded old tuple%s" % (
            line, " (stale parent)" if block_is_stale(line) else "")


class ReplayMetaAttack(Attack):
    """Replay an old-but-consistent metadata node image."""

    name = "replay_meta"
    needs_prepare = True
    snapshot_budget = 256

    def prepare(self, machine, attacker, rng):
        lines = [line for line in range(
            machine.controller.geometry.total_nodes)
            if machine.nvm.meta_is_touched(line)]
        if len(lines) > self.snapshot_budget:
            lines = rng.sample(lines, self.snapshot_budget)
        for line in sorted(lines):
            attacker.snapshot_meta_line(line)

    def apply(self, machine, attacker, rng):
        nvm = machine.nvm
        candidates = [
            line for line, old in sorted(attacker._meta_snapshots.items())
            if old is not None and old != nvm.peek_meta(line)
        ]
        if not candidates:
            return None
        line = rng.choice(candidates)
        if not attacker.replay_meta_line(line):
            return None
        return "meta line %d replayed with its recorded old image" % line


ATTACK_CLASSES: Dict[str, Type[Attack]] = {
    cls.name: cls for cls in (
        MetaMsbAttack, DataLsbAttack, DataMacAttack, MetaLsbAttack,
        BitmapHideAttack, BitmapFakeAttack, ReplayDataAttack,
        ReplayMetaAttack,
    )
}

ATTACK_MATRIX: Dict[str, List[str]] = {
    "star": sorted(ATTACK_CLASSES),
    "anubis": ["data_mac", "replay_data"],
    "strict": ["data_mac", "replay_data"],
    "phoenix": ["data_mac"],
    "wb": [],  # no recovery: nothing to attack between crash and reboot
}
"""Scheme -> attack names whose detection the scheme guarantees (see
module docstring). The fuzzer only injects attacks a scheme claims to
detect; everything else would report the baseline's documented gaps as
failures of the harness."""


def make_attack(name: str) -> Attack:
    try:
        return ATTACK_CLASSES[name]()
    except KeyError:
        raise ValueError(
            "unknown attack %r (choose from %s)"
            % (name, ", ".join(sorted(ATTACK_CLASSES)))
        ) from None


def eligible_attacks(scheme: str) -> List[str]:
    """The attacks the campaign may draw for ``scheme``."""
    return list(ATTACK_MATRIX.get(scheme, []))
