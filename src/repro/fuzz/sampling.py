"""Campaign scheduling: deterministic case sampling.

A campaign is a seeded grid of :class:`FuzzCase` tuples. Every random
choice — workload, scheme, workload seed, operation count, crash point,
attack and attack targets — derives from ``Random("fuzz:<campaign
seed>:<case index>")``, whose string seeding is SHA-512 based and hence
byte-stable across processes and platforms. That is the replayability
contract: any case that fails in a parallel worker reproduces
single-process from its serialized spec alone.

Crash and snapshot points are stored as *fractions* of the trace rather
than op indices, so the same case spec remains meaningful when the
minimizer shrinks the op list underneath it.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.fuzz.attacks import eligible_attacks
from repro.schemes import SIT_SCHEMES
from repro.workloads.registry import WORKLOAD_CLASSES


@dataclass(frozen=True)
class FuzzCase:
    """One fully-determined crash-consistency scenario."""

    index: int
    workload: str
    scheme: str
    seed: int
    operations: int
    crash_frac: float
    prepare_frac: float
    attack: Optional[str] = None
    attack_seed: int = 0

    @property
    def case_id(self) -> str:
        return "c%06d-%s-%s" % (self.index, self.scheme, self.workload)

    def crash_index(self, trace_length: int) -> int:
        """The op index after which power fails (1..trace_length)."""
        if trace_length < 1:
            return 0
        return min(trace_length, max(1, round(self.crash_frac
                                              * trace_length)))

    def prepare_index(self, crash_at: int) -> int:
        """The op index where replay attacks take their snapshots."""
        return min(crash_at, int(self.prepare_frac * crash_at))

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "FuzzCase":
        return cls(**{key: payload[key]
                      for key in cls.__dataclass_fields__
                      if key in payload})


@dataclass(frozen=True)
class CampaignSpec:
    """The sampling grid of one fuzzing campaign."""

    cases: int = 32
    seed: int = 0
    schemes: List[str] = field(
        default_factory=lambda: sorted(SIT_SCHEMES)
    )
    workloads: List[str] = field(
        default_factory=lambda: ["array", "hash", "queue"]
    )
    min_operations: int = 40
    max_operations: int = 160
    attack_rate: float = 0.5
    """Probability that a case injects an attack, when its scheme has
    any eligible attack (see :data:`repro.fuzz.attacks.ATTACK_MATRIX`)."""
    defect: Optional[str] = None
    """Test-only fault injection, by :data:`repro.fuzz.executor.DEFECTS`
    name — used to prove the oracle stack catches detection bugs."""

    def validate(self) -> None:
        if self.cases < 1:
            raise ConfigError("campaign needs at least one case")
        if not self.schemes:
            raise ConfigError("campaign needs at least one scheme")
        if not self.workloads:
            raise ConfigError("campaign needs at least one workload")
        for scheme in self.schemes:
            if scheme not in SIT_SCHEMES:
                raise ConfigError("unknown scheme %r" % scheme)
        for workload in self.workloads:
            if workload not in WORKLOAD_CLASSES:
                raise ConfigError("unknown workload %r" % workload)
        if not 1 <= self.min_operations <= self.max_operations:
            raise ConfigError("bad operation-count range")
        if not 0.0 <= self.attack_rate <= 1.0:
            raise ConfigError("attack rate must be within [0, 1]")
        if self.defect is not None:
            from repro.fuzz.executor import DEFECTS

            if self.defect not in DEFECTS:
                raise ConfigError(
                    "unknown defect %r (choose from %s)"
                    % (self.defect, ", ".join(sorted(DEFECTS)))
                )

    def to_dict(self) -> Dict:
        return asdict(self)


def case_rng(campaign_seed: int, index: int) -> random.Random:
    """The per-case RNG stream (stable across processes)."""
    return random.Random("fuzz:%d:%d" % (campaign_seed, index))


def sample_cases(spec: CampaignSpec) -> List[FuzzCase]:
    """Materialize the campaign's deterministic case list."""
    spec.validate()
    cases: List[FuzzCase] = []
    for index in range(spec.cases):
        rng = case_rng(spec.seed, index)
        scheme = rng.choice(sorted(spec.schemes))
        workload = rng.choice(sorted(spec.workloads))
        seed = rng.randrange(2 ** 31)
        operations = rng.randint(spec.min_operations,
                                 spec.max_operations)
        crash_frac = rng.random()
        prepare_frac = rng.random()
        attack = None
        attack_seed = rng.randrange(2 ** 31)
        repertoire = eligible_attacks(scheme)
        if repertoire and rng.random() < spec.attack_rate:
            attack = rng.choice(repertoire)
        cases.append(FuzzCase(
            index=index, workload=workload, scheme=scheme, seed=seed,
            operations=operations, crash_frac=crash_frac,
            prepare_frac=prepare_frac, attack=attack,
            attack_seed=attack_seed,
        ))
    return cases
