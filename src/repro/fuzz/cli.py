"""``star-fuzz``: the crash-consistency fuzzing campaign CLI.

Examples::

    # a parallel campaign over every scheme and three workloads
    star-fuzz run --cases 60 --jobs 4 --seed 1 \\
        --corpus /tmp/fuzz/corpus.jsonl

    # prove the oracle catches a broken root verification (self-test)
    star-fuzz run --cases 40 --schemes star --attack-rate 1.0 \\
        --inject-defect skip-root-verify --corpus /tmp/fuzz/bad.jsonl

    # re-execute recorded failures / minimized artifacts single-process
    star-fuzz replay /tmp/fuzz/corpus.jsonl
    star-fuzz replay /tmp/fuzz/artifacts/c000007-star-hash.json

    # shrink recorded failures into .trace.gz repro artifacts
    star-fuzz minimize /tmp/fuzz/corpus.jsonl --artifacts /tmp/fuzz
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.tables import ExperimentTable, render_table
from repro.fuzz import corpus as corpus_io
from repro.fuzz.attacks import ATTACK_MATRIX
from repro.fuzz.executor import (
    DEFECTS,
    CampaignResult,
    CaseResult,
    run_campaign,
    run_case,
)
from repro.fuzz.minimize import (
    minimize_failure,
    replay_artifact,
    write_artifacts,
)
from repro.fuzz.sampling import CampaignSpec
from repro.schemes import SIT_SCHEMES
from repro.workloads.registry import ALL_WORKLOADS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="star-fuzz",
        description="Crash-consistency fuzzing campaigns over the "
                    "simulated secure-NVM machine.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="sample and execute a fuzzing campaign"
    )
    run.add_argument("--cases", type=int, default=48)
    run.add_argument("--jobs", type=int, default=1,
                     help="parallel worker processes (spawn)")
    run.add_argument("--seed", type=int, default=0,
                     help="campaign seed; every case derives from it")
    run.add_argument("--schemes", default=",".join(sorted(SIT_SCHEMES)),
                     help="comma-separated scheme list")
    run.add_argument("--workloads", default="array,hash,queue",
                     help="comma-separated workload list (%s)"
                          % ",".join(ALL_WORKLOADS))
    run.add_argument("--min-operations", type=int, default=40)
    run.add_argument("--max-operations", type=int, default=160)
    run.add_argument("--attack-rate", type=float, default=0.5,
                     help="probability of injecting an attack when the "
                          "scheme has eligible ones")
    run.add_argument("--corpus", default="fuzz-corpus.jsonl",
                     help="JSONL failure corpus to write")
    run.add_argument("--artifacts", default=None,
                     help="directory for minimized repro artifacts "
                          "(default: next to the corpus)")
    run.add_argument("--no-minimize", action="store_true",
                     help="skip automatic failure minimization")
    run.add_argument("--inject-defect", choices=sorted(DEFECTS),
                     default=None,
                     help="test-only fault injection (oracle self-test)")
    run.add_argument("--sanitize", action="store_true",
                     help="run every case on Machine(sanitize=True): "
                          "runtime write sanitizers on top of the "
                          "oracle stack (repro.sim.sanitize)")
    run.add_argument("--telemetry", metavar="DIR", default=None,
                     help="publish per-worker heartbeat/metric "
                          "snapshots into DIR for star-top "
                          "(repro.obs.live)")
    run.add_argument("--heartbeat-interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="min seconds between heartbeat publications "
                          "per worker (default 1.0; 0 = every case)")
    run.add_argument("--quiet", action="store_true")

    replay = commands.add_parser(
        "replay", help="re-execute corpus failures or a minimized "
                       "artifact single-process"
    )
    replay.add_argument("path", help="corpus .jsonl or artifact .json")

    minimize = commands.add_parser(
        "minimize", help="shrink recorded failures to repro artifacts"
    )
    minimize.add_argument("corpus", help="JSONL failure corpus")
    minimize.add_argument("--artifacts", default=None,
                          help="output directory (default: corpus dir)")
    minimize.add_argument("--max-runs", type=int, default=200,
                          help="re-execution budget per failure")
    return parser


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
def _summary_table(result: CampaignResult) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="fuzz",
        title="campaign %d: %d cases" % (result.spec.seed,
                                         len(result.results)),
        columns=["scheme", "cases", "attacks", "recovery", "on-use",
                 "audit", "healed", "failures"],
    )
    for scheme in sorted({r.case.scheme for r in result.results}):
        rows = [r for r in result.results if r.case.scheme == scheme]
        table.add_row(
            scheme=scheme,
            cases=len(rows),
            attacks=sum(1 for r in rows if r.tampered),
            **{by: sum(1 for r in rows if r.detected_by == by)
               for by in ("recovery", "on-use", "audit", "healed")},
            failures=sum(1 for r in rows if r.failed),
        )
    table.notes.append(
        "attack repertoire per scheme: "
        + "; ".join("%s=%d" % (name, len(attacks))
                    for name, attacks in sorted(ATTACK_MATRIX.items()))
    )
    return table


def _cmd_run(args) -> int:
    spec = CampaignSpec(
        cases=args.cases,
        seed=args.seed,
        schemes=[s for s in args.schemes.split(",") if s],
        workloads=[w for w in args.workloads.split(",") if w],
        min_operations=args.min_operations,
        max_operations=args.max_operations,
        attack_rate=args.attack_rate,
        defect=args.inject_defect,
    )
    spec.validate()
    corpus_path = Path(args.corpus)
    artifacts_dir = (
        Path(args.artifacts) if args.artifacts
        else corpus_path.parent / "artifacts"
    )

    def progress(result: CaseResult) -> None:
        if args.quiet or not result.failed:
            return
        print("FAIL %s: %s" % (
            result.case.case_id,
            "; ".join(v["kind"] for v in result.violations),
        ))

    with corpus_io.CorpusWriter(corpus_path) as writer:
        writer.write_header(spec.to_dict())
        campaign = run_campaign(
            spec, jobs=args.jobs, progress=progress,
            sanitize=args.sanitize, telemetry_dir=args.telemetry,
            heartbeat_interval_s=args.heartbeat_interval,
        )
        for failure in campaign.failures:
            writer.write_failure(failure)
        writer.write_summary(campaign.summary())

    if not args.quiet:
        print(render_table(_summary_table(campaign)))
        print("corpus: %s (%d failure records)"
              % (corpus_path, len(campaign.failures)))

    exit_code = 0 if campaign.ok else 1
    if campaign.failures and not args.no_minimize:
        for failure in campaign.failures:
            minimized = minimize_failure(failure.case, defect=spec.defect)
            if minimized is None:
                print("  %s: failure did not reproduce during "
                      "minimization" % failure.case.case_id)
                continue
            trace_path, meta_path = write_artifacts(
                minimized, artifacts_dir
            )
            reproduced, _ = replay_artifact(meta_path)
            print("  minimized %s: %d -> %d ops (%d runs, "
                  "reproduces=%s) -> %s"
                  % (failure.case.case_id, minimized.original_ops,
                     minimized.minimized_ops, minimized.runs,
                     reproduced, trace_path))
    return exit_code


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def _corpus_defect(path: Path) -> Optional[str]:
    """The defect the recorded campaign injected, from its header."""
    header = next(
        (record for record in corpus_io.read_corpus(path)
         if record["type"] == "campaign"), None,
    )
    return (header or {}).get("spec", {}).get("defect")


def _cmd_replay(args) -> int:
    path = Path(args.path)
    if path.suffix == ".json":
        reproduced, signature = replay_artifact(path)
        print("%s: reproduces=%s signature=%s"
              % (path.name, reproduced, list(signature)))
        return 0 if reproduced else 1

    failures = corpus_io.load_failures(path)
    if not failures:
        print("no failure records in %s" % path)
        return 0
    defect = _corpus_defect(path)
    bad = 0
    for recorded in failures:
        rerun = run_case(recorded.case, defect=defect)
        match = rerun.signature == recorded.signature
        bad += 0 if match else 1
        print("%s: reproduces=%s recorded=%s observed=%s"
              % (recorded.case.case_id, match,
                 list(recorded.signature), list(rerun.signature)))
    return 0 if bad == 0 else 1


# ----------------------------------------------------------------------
# minimize
# ----------------------------------------------------------------------
def _cmd_minimize(args) -> int:
    corpus_path = Path(args.corpus)
    artifacts_dir = (
        Path(args.artifacts) if args.artifacts else corpus_path.parent
    )
    defect = _corpus_defect(corpus_path)
    failures = corpus_io.load_failures(corpus_path)
    if not failures:
        print("no failure records in %s" % corpus_path)
        return 0
    for failure in failures:
        minimized = minimize_failure(
            failure.case, defect=defect, max_runs=args.max_runs
        )
        if minimized is None:
            print("%s: does not reproduce" % failure.case.case_id)
            continue
        trace_path, meta_path = write_artifacts(minimized, artifacts_dir)
        reproduced, _ = replay_artifact(meta_path)
        print("%s: %d -> %d ops (%d runs, reproduces=%s) -> %s"
              % (failure.case.case_id, minimized.original_ops,
                 minimized.minimized_ops, minimized.runs, reproduced,
                 trace_path))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "replay":
        return _cmd_replay(args)
    return _cmd_minimize(args)


if __name__ == "__main__":
    sys.exit(main())
