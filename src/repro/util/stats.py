"""Named counters shared by every component — now a telemetry facade.

A single :class:`Stats` instance is threaded through the NVM model, the
metadata cache, the persistence scheme and the timing model, so that
every experiment can read one flat namespace of counters (write traffic,
bitmap line hits, recovery reads, ...).

Since the observability rework the counters live in a
:class:`~repro.obs.metrics.MetricRegistry`; ``Stats`` keeps the seed's
flat-counter API as a thin compatibility facade and adds one-line access
to the registry's richer instruments:

* ``stats.observe("ctrl.cascade_depth", depth)`` — log-scale histogram,
* ``stats.gauge_set("nvm.data_lines", n)`` — instantaneous level,
* ``stats.event("force_flush", level=2)`` — structured event log,
* ``with stats.span("recovery.locate"): ...`` — timed phase tree.

All distribution/span/event calls no-op when the registry is disabled;
counters always count, because the figure reproductions read them.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.obs.metrics import Counter, MetricRegistry


class _NullSpan:
    """A reusable no-op context manager for disabled span tracing.

    Yields ``None`` like a disabled :meth:`SpanTracer.span`, but without
    paying for a generator-based context manager per call.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Stats:
    """A flat namespace of counters over the machine's telemetry hub."""

    def __init__(self, registry: Optional[MetricRegistry] = None,
                 enabled: bool = True) -> None:
        if registry is None:
            registry = MetricRegistry(enabled=enabled)
        self.registry = registry
        # registry.reset() clears this dict in place, so the binding
        # survives resets
        self._counters = registry._counters
        if not registry.enabled:
            # true zero-cost disabled path: overhead-sensitive sweeps
            # (telemetry=False) pay one attribute load + no-op call per
            # telemetry touchpoint instead of enabled checks and
            # instrument lookups (counters still count — see add())
            self.observe = self._observe_noop  # type: ignore[method-assign]
            self.gauge_set = self._observe_noop  # type: ignore[method-assign]
            self.event = self._event_noop  # type: ignore[method-assign]
            self.span = self._span_noop  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # the seed counter API (unchanged semantics)
    # ------------------------------------------------------------------
    def add(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount``."""
        # inlined registry.counter(): add() fires on every NVM access
        counters = self._counters
        counter = counters.get(name)
        if counter is None:
            counter = counters[name] = Counter(name)
        counter.value += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        counter = self._counters.get(name)
        return 0 if counter is None else counter.value

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return self.registry.counters()

    def __len__(self) -> int:
        """Number of distinct counters."""
        return len(self._counters)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters."""
        return self.registry.counter_values()

    def prefixed(self, prefix: str) -> Dict[str, int]:
        """Counters of one subsystem, e.g. ``stats.prefixed("nvm.")``.

        Returns a name-sorted plain dict of every counter whose name
        starts with ``prefix``.
        """
        return {
            name: value
            for name, value in self.registry.counters()
            if name.startswith(prefix)
        }

    def merge(self, other: "Stats") -> None:
        """Add all counters of ``other`` into this instance."""
        for name, value in other.registry.counters():
            self.registry.counter(name).value += value

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator``, 0.0 when the denominator is zero."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def reset(self) -> None:
        """Zero every counter (and the registry's other instruments)."""
        self.registry.reset()

    def __repr__(self) -> str:
        parts = ", ".join("%s=%d" % kv for kv in self)
        return "Stats(%s)" % parts

    # ------------------------------------------------------------------
    # telemetry conveniences (no-ops while the registry is disabled)
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the log-scale histogram ``name``."""
        if self.registry.enabled:
            self.registry.histogram(name).observe(value)

    def gauge_set(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (tracks a high-watermark)."""
        if self.registry.enabled:
            self.registry.gauge(name).set(value)

    def event(self, kind: str, **fields: object) -> None:
        """Append one structured event to the machine's event log."""
        self.registry.events.emit(kind, **fields)

    def span(self, name: str, **attrs: object):
        """Open a timed span (context manager; spans nest)."""
        return self.registry.tracer.span(name, **attrs)

    # bound in place of the methods above when the registry is disabled
    def _observe_noop(self, name: str, value: float = 0.0) -> None:
        pass

    def _event_noop(self, kind: str, **fields: object) -> None:
        pass

    def _span_noop(self, name: str, **attrs: object) -> "_NullSpan":
        return _NULL_SPAN
