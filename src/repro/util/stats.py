"""Named integer counters shared by every component of the simulator.

A single :class:`Stats` instance is threaded through the NVM model, the
metadata cache, the persistence scheme and the timing model, so that every
experiment can read one flat namespace of counters (write traffic, bitmap
line hits, recovery reads, ...).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Stats:
    """A flat namespace of monotonically increasing counters."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self._counters.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counters.items()))

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters."""
        return dict(self._counters)

    def merge(self, other: "Stats") -> None:
        """Add all counters of ``other`` into this instance."""
        for name, value in other._counters.items():
            self._counters[name] += value

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator``, 0.0 when the denominator is zero."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def reset(self) -> None:
        """Zero every counter."""
        self._counters.clear()

    def __repr__(self) -> str:
        parts = ", ".join("%s=%d" % kv for kv in self)
        return "Stats(%s)" % parts
