"""Bit-level packing helpers.

Security metadata in the paper is specified at bit granularity: 56-bit
counters, 54-bit MACs, 10-bit counter LSBs, 512-bit bitmap lines. These
helpers keep that packing logic in one place and make it easy to property
test.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple


def mask(nbits: int) -> int:
    """Return an integer with the ``nbits`` low bits set."""
    if nbits < 0:
        raise ValueError("bit width must be non-negative, got %d" % nbits)
    return (1 << nbits) - 1


def truncate(value: int, nbits: int) -> int:
    """Keep only the low ``nbits`` bits of ``value``."""
    return value & mask(nbits)


def check_width(value: int, nbits: int, name: str = "value") -> int:
    """Validate that ``value`` fits in ``nbits`` bits and return it."""
    if value < 0:
        raise ValueError("%s must be non-negative, got %d" % (name, value))
    if value > mask(nbits):
        raise ValueError(
            "%s does not fit in %d bits: %d" % (name, nbits, value)
        )
    return value


def pack_fields(fields: Iterable[Tuple[int, int]]) -> int:
    """Pack ``(value, width)`` pairs into one integer, first pair highest.

    >>> hex(pack_fields([(0xA, 4), (0xB, 4)]))
    '0xab'
    """
    packed = 0
    for value, width in fields:
        check_width(value, width)
        packed = (packed << width) | value
    return packed


def unpack_fields(packed: int, widths: Iterable[int]) -> List[int]:
    """Inverse of :func:`pack_fields` for the given widths."""
    widths = list(widths)
    values = [0] * len(widths)
    for i in range(len(widths) - 1, -1, -1):
        width = widths[i]
        values[i] = packed & mask(width)
        packed >>= width
    if packed:
        raise ValueError("packed value wider than the supplied widths")
    return values


def set_bit(word: int, bit: int) -> int:
    """Return ``word`` with bit index ``bit`` set."""
    return word | (1 << bit)


def clear_bit(word: int, bit: int) -> int:
    """Return ``word`` with bit index ``bit`` cleared."""
    return word & ~(1 << bit)


def test_bit(word: int, bit: int) -> bool:
    """Return True when bit index ``bit`` of ``word`` is set."""
    return bool((word >> bit) & 1)


def iter_set_bits(word: int) -> Iterator[int]:
    """Yield the indices of set bits in ``word``, ascending.

    Negative words are rejected: two's-complement sign extension means
    a negative integer has infinitely many set bits, and the pre-guard
    implementation looped forever (``-1 >> 1 == -1``).
    """
    if word < 0:
        raise ValueError(
            "iter_set_bits requires a non-negative word, got %d" % word
        )
    bit = 0
    while word:
        if word & 1:
            yield bit
        word >>= 1
        bit += 1


def popcount(word: int) -> int:
    """Number of set bits in ``word`` (non-negative only).

    Negative inputs are rejected rather than miscounted: the previous
    ``bin(word).count("1")`` counted the magnitude's bits, silently
    wrong for two's-complement semantics.
    """
    if word < 0:
        raise ValueError(
            "popcount requires a non-negative word, got %d" % word
        )
    return word.bit_count()


def bytes_to_int(data: bytes) -> int:
    """Interpret ``data`` as a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def int_to_bytes(value: int, length: int) -> bytes:
    """Serialize ``value`` as ``length`` big-endian bytes."""
    return value.to_bytes(length, "big")
