"""Small reusable utilities: bit packing, LRU container, stat counters."""

from repro.util.bitfield import (
    check_width,
    clear_bit,
    iter_set_bits,
    mask,
    pack_fields,
    popcount,
    set_bit,
    test_bit,
    truncate,
    unpack_fields,
)
from repro.util.lru import LRUCache
from repro.util.stats import Stats

__all__ = [
    "LRUCache",
    "Stats",
    "check_width",
    "clear_bit",
    "iter_set_bits",
    "mask",
    "pack_fields",
    "popcount",
    "set_bit",
    "test_bit",
    "truncate",
    "unpack_fields",
]
