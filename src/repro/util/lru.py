"""A small least-recently-used container.

Used by the ADR bitmap-line manager (Section III-C) and as the replacement
policy inside the set-associative cache model. Kept separate from the cache
so it can be tested and reasoned about in isolation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded mapping evicting the least recently used entry on overflow.

    ``get``/``put`` refresh recency. ``put`` returns the evicted
    ``(key, value)`` pair when the capacity bound forces an eviction, which
    the bitmap-line manager uses to spill a line to the recovery area.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %d" % capacity)
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def get(self, key: K) -> V:
        """Return the value for ``key`` and mark it most recently used."""
        value = self._entries[key]
        self._entries.move_to_end(key)
        return value

    def peek(self, key: K) -> V:
        """Return the value for ``key`` without refreshing recency."""
        return self._entries[key]

    def put(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert or update ``key``; return the evicted pair, if any."""
        if key in self._entries:
            self._entries[key] = value
            self._entries.move_to_end(key)
            return None
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            return self._entries.popitem(last=False)
        return None

    def pop(self, key: K) -> V:
        """Remove and return the value for ``key``."""
        return self._entries.pop(key)

    def pop_lru(self) -> Tuple[K, V]:
        """Remove and return the least recently used pair."""
        return self._entries.popitem(last=False)

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate ``(key, value)`` pairs from least to most recent."""
        return iter(self._entries.items())

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()
