"""Counter-mode encryption (Section II-B of the paper).

A one-time pad (OTP) is derived from (secret key, line address, counter)
and XORed with the 64-byte line. Because the counter increments on every
write to the same address, and the address differs across lines, no pad is
ever reused — the property CME relies on.

The paper's hardware generates the pad with AES; this reproduction uses a
keyed BLAKE2b keystream. The construction is identical in shape (keyed PRF
over (address, counter)); only the primitive differs, and nothing in the
evaluation depends on the choice of block cipher.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config import LINE_SIZE
from repro.crypto.hashing import (
    KeyedBlake2b,
    encode_int_part,
    encode_str_part,
    hash_bytes,
)

# the serialized "otp" domain tag and the block-0 suffix never change;
# byte-identical to routing them through hash_bytes (pinned by tests)
_OTP_PREFIX = encode_str_part("otp")
_BLOCK0_SUFFIX = encode_int_part(0)


class CounterModeEngine:
    """Encrypts and decrypts 64-byte lines under counter mode.

    Hot-path notes: the XOR runs as one wide integer operation rather
    than a per-byte generator (an order of magnitude cheaper in
    CPython), and derived pads sit in a small bounded cache — the
    common encrypt-then-verify / write-then-read-back sequences reuse
    the (address, counter) pad immediately. Caching pads does not
    weaken the OTP argument: a pad is reused only for the *same*
    (address, counter) pair, where it is the same pad by definition.
    """

    _PAD_CACHE_LIMIT = 4096

    __slots__ = ("_key", "_line_size", "_pad_cache", "_prf")

    def __init__(self, key: bytes, line_size: int = LINE_SIZE) -> None:
        if not key:
            raise ValueError("encryption key must be non-empty")
        self._key = key
        self._line_size = line_size
        self._pad_cache: Dict[Tuple[int, int], bytes] = {}
        self._prf = KeyedBlake2b(key, digest_size=64)

    @property
    def line_size(self) -> int:
        return self._line_size

    def one_time_pad(self, address: int, counter: int) -> bytes:
        """The pad for (address, counter); never reused across writes."""
        cache = self._pad_cache
        pad = cache.get((address, counter))
        if pad is None:
            pad = self._derive_pad(address, counter)
            if len(cache) >= self._PAD_CACHE_LIMIT:
                cache.clear()
            cache[(address, counter)] = pad
        return pad

    def _derive_pad(self, address: int, counter: int) -> bytes:
        # keystream blocks are always 64-byte digests (then truncated)
        # so pads are bit-identical across line sizes' common prefix
        if self._line_size == 64:
            return self._prf.digest(
                _OTP_PREFIX
                + encode_int_part(address)
                + encode_int_part(counter)
                + _BLOCK0_SUFFIX
            )
        pad = b""
        block = 0
        while len(pad) < self._line_size:
            pad += hash_bytes(
                self._key, 64, "otp", address, counter, block
            )
            block += 1
        return pad[: self._line_size]

    def encrypt(self, plaintext: bytes, address: int, counter: int) -> bytes:
        """XOR ``plaintext`` with the (address, counter) pad."""
        size = self._line_size
        if len(plaintext) != size:
            raise ValueError(
                "plaintext must be exactly %d bytes" % size
            )
        pad = self.one_time_pad(address, counter)
        return (
            int.from_bytes(plaintext, "big")
            ^ int.from_bytes(pad, "big")
        ).to_bytes(size, "big")

    def decrypt(self, ciphertext: bytes, address: int, counter: int) -> bytes:
        """XOR is an involution: decryption equals encryption."""
        return self.encrypt(ciphertext, address, counter)
