"""Counter-mode encryption (Section II-B of the paper).

A one-time pad (OTP) is derived from (secret key, line address, counter)
and XORed with the 64-byte line. Because the counter increments on every
write to the same address, and the address differs across lines, no pad is
ever reused — the property CME relies on.

The paper's hardware generates the pad with AES; this reproduction uses a
keyed BLAKE2b keystream. The construction is identical in shape (keyed PRF
over (address, counter)); only the primitive differs, and nothing in the
evaluation depends on the choice of block cipher.
"""

from __future__ import annotations

from repro.config import LINE_SIZE
from repro.crypto.hashing import hash_bytes


class CounterModeEngine:
    """Encrypts and decrypts 64-byte lines under counter mode."""

    def __init__(self, key: bytes, line_size: int = LINE_SIZE) -> None:
        if not key:
            raise ValueError("encryption key must be non-empty")
        self._key = key
        self._line_size = line_size

    @property
    def line_size(self) -> int:
        return self._line_size

    def one_time_pad(self, address: int, counter: int) -> bytes:
        """The pad for (address, counter); never reused across writes."""
        pad = b""
        block = 0
        while len(pad) < self._line_size:
            pad += hash_bytes(
                self._key, 64, "otp", address, counter, block
            )
            block += 1
        return pad[: self._line_size]

    def encrypt(self, plaintext: bytes, address: int, counter: int) -> bytes:
        """XOR ``plaintext`` with the (address, counter) pad."""
        if len(plaintext) != self._line_size:
            raise ValueError(
                "plaintext must be exactly %d bytes" % self._line_size
            )
        pad = self.one_time_pad(address, counter)
        return bytes(p ^ k for p, k in zip(plaintext, pad))

    def decrypt(self, ciphertext: bytes, address: int, counter: int) -> bytes:
        """XOR is an involution: decryption equals encryption."""
        return self.encrypt(ciphertext, address, counter)
