"""Keyed hashing / MAC primitives.

The paper's hardware uses a Carter-Wegman style MAC engine; this
reproduction substitutes keyed BLAKE2b (stdlib, deterministic across
platforms) truncated to the paper's 54-bit MAC width. What matters for
every mechanism built on top — collision detection, tamper detection,
cache-tree roots — is that the function is a deterministic keyed PRF,
which BLAKE2b provides.

Inputs are fed through a small canonical serialization so that distinct
tuples can never collide structurally (every part is tagged and
length-prefixed).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Tuple, Union

from repro.config import MAC_BITS
from repro.util.bitfield import mask

HashPart = Union[int, bytes, str]

_INT_TAG = b"\x01"
_BYTES_TAG = b"\x02"
_STR_TAG = b"\x03"


def _serialize(parts: Iterable[HashPart]) -> bytes:
    # exact-type dispatch on the hot path (every MAC computation runs
    # through here); subclasses and rejects take the isinstance slow
    # path in _serialize_other
    chunks: List[bytes] = []
    append = chunks.append
    for part in parts:
        kind = type(part)
        if kind is int:
            if part < 0:
                raise ValueError("hash inputs must be non-negative ints")
            body = part.to_bytes((part.bit_length() + 7) // 8 or 1, "big")
            append(_INT_TAG)
        elif kind is bytes:
            body = part
            append(_BYTES_TAG)
        elif kind is str:
            body = part.encode("utf-8")
            append(_STR_TAG)
        else:
            tag, body = _serialize_other(part)
            append(tag)
        append(len(body).to_bytes(4, "big"))
        append(body)
    return b"".join(chunks)


def _serialize_other(part: HashPart) -> Tuple[bytes, bytes]:
    """Subclass / error handling for :func:`_serialize`."""
    if isinstance(part, bool):
        raise TypeError("booleans are ambiguous hash inputs")
    if isinstance(part, int):
        if part < 0:
            raise ValueError("hash inputs must be non-negative ints")
        return _INT_TAG, part.to_bytes(
            (part.bit_length() + 7) // 8 or 1, "big"
        )
    if isinstance(part, bytes):
        return _BYTES_TAG, part
    if isinstance(part, str):
        return _STR_TAG, part.encode("utf-8")
    raise TypeError("unsupported hash input type: %r" % type(part))


def keyed_hash(key: bytes, *parts: HashPart) -> int:
    """A 64-bit keyed hash of the canonical serialization of ``parts``."""
    digest = hashlib.blake2b(
        _serialize(parts), key=key, digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def mac_n(key: bytes, nbits: int, *parts: HashPart) -> int:
    """A keyed MAC truncated to ``nbits`` bits."""
    return keyed_hash(key, *parts) & mask(nbits)


def mac54(key: bytes, *parts: HashPart) -> int:
    """The paper's 54-bit MAC (64-bit field minus 10 spare bits)."""
    return mac_n(key, MAC_BITS, *parts)


def hash_bytes(key: bytes, nbytes: int, *parts: HashPart) -> bytes:
    """A keyed hash of arbitrary output length (for OTP keystreams)."""
    if not 1 <= nbytes <= 64:
        raise ValueError("BLAKE2b digests are limited to 64 bytes")
    return hashlib.blake2b(
        _serialize(parts), key=key, digest_size=nbytes
    ).digest()


# ----------------------------------------------------------------------
# hot-path helpers: same bytes, same digests, less interpreter work
# ----------------------------------------------------------------------
# Keying BLAKE2b pads the key into the first compression block, so
# constructing hashlib.blake2b(key=...) per message re-does that work
# every call. A prototype object absorbs the key once; .copy() restores
# the keyed state for ~a third of the construction cost. Identical
# digests by construction (the message argument is just a first
# update()), pinned by tests/test_hashing.py.

class KeyedBlake2b:
    """A reusable keyed-BLAKE2b instance: pay for the key once."""

    __slots__ = ("_proto",)

    def __init__(self, key: bytes, digest_size: int) -> None:
        self._proto = hashlib.blake2b(key=key, digest_size=digest_size)

    def digest(self, message: bytes) -> bytes:
        state = self._proto.copy()
        state.update(message)
        return state.digest()


# Serialized int parts are dominated by values < 256 (levels, slots,
# LSBs, young counters); precompute their full tag+length+body encoding.
_INT_PART_MEMO = tuple(
    _INT_TAG + b"\x00\x00\x00\x01" + bytes((value,))
    for value in range(256)
)

# Wider values (node indices, grown counters) recur heavily too — every
# MAC over a metadata node re-encodes the same indices. Memoize them in
# a bounded dict; the population is capped by the geometry (node
# indices) plus the live counter values, so the limit is rarely hit.
_WIDE_PART_MEMO: dict = {}
_WIDE_PART_LIMIT = 1 << 17


def encode_int_part(value: int) -> bytes:
    """The canonical serialization of one non-negative int part.

    Byte-identical to what :func:`_serialize` emits for the same value
    (pinned by tests), but callable piecewise so hot paths can assemble
    known-shape messages without the generic dispatch loop.
    """
    if 0 <= value < 256:
        return _INT_PART_MEMO[value]
    if value < 0:
        raise ValueError("hash inputs must be non-negative ints")
    encoded = _WIDE_PART_MEMO.get(value)
    if encoded is None:
        size = (value.bit_length() + 7) // 8
        encoded = (
            _INT_TAG + size.to_bytes(4, "big") + value.to_bytes(size, "big")
        )
        if len(_WIDE_PART_MEMO) >= _WIDE_PART_LIMIT:
            _WIDE_PART_MEMO.clear()
        _WIDE_PART_MEMO[value] = encoded
    return encoded


def encode_str_part(value: str) -> bytes:
    """Canonical serialization of one str part (for message prefixes)."""
    body = value.encode("utf-8")
    return _STR_TAG + len(body).to_bytes(4, "big") + body


def encode_bytes_part(value: bytes) -> bytes:
    """Canonical serialization of one bytes part."""
    return _BYTES_TAG + len(value).to_bytes(4, "big") + value
