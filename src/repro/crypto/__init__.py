"""Cryptographic substrate: keyed MACs and counter-mode encryption."""

from repro.crypto.hashing import hash_bytes, keyed_hash, mac54, mac_n
from repro.crypto.otp import CounterModeEngine

__all__ = [
    "CounterModeEngine",
    "hash_bytes",
    "keyed_hash",
    "mac54",
    "mac_n",
]
