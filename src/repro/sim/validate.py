"""Machine-state consistency auditing.

A debugging and testing aid: walks a live machine and checks the
cross-component invariants that the design relies on. Returns a list of
human-readable violations (empty = consistent), so tests can assert
emptiness and interactive users can print the findings.

Checked invariants:

* **persisted-counter mirror** — every cached node's
  ``persisted_counters`` equals its NVM image (or zero for untouched
  lines);
* **drift bound** — no cached counter has drifted ``2^10`` or more
  increments from its persisted value (the counter-MAC synergization
  guarantee, Section III-B);
* **dirty consistency** — clean cached nodes equal their NVM images;
  dirty ones differ (or have never been persisted);
* **bitmap mirror** (STAR) — the stale bitmap equals the dirty-bit
  population of the metadata cache;
* **ADR/recovery-area residency** (STAR, Section III-C) — a bitmap line
  resident in the battery-backed ADR must not simultaneously be claimed
  spilled to the recovery area, and every line claimed spilled must
  actually have a recovery-area copy;
* **NVM image authenticity** — every touched metadata line's MAC
  verifies against its parent's live counter.
"""

from __future__ import annotations

from typing import List

from repro.core.synergy import LSB_SPAN


def audit_machine(machine) -> List[str]:
    """Run every applicable invariant check; return violations."""
    violations: List[str] = []
    violations.extend(_check_cached_nodes(machine))
    violations.extend(_check_nvm_images(machine))
    if hasattr(machine.scheme, "bitmap"):
        violations.extend(_check_bitmap(machine))
        violations.extend(_check_adr(machine))
    return violations


def _check_cached_nodes(machine) -> List[str]:
    violations: List[str] = []
    controller = machine.controller
    for line in controller.meta_cache.lines():
        node = line.payload
        image = machine.nvm.peek_meta(line.addr)
        persisted = (
            tuple(image.counters) if image is not None else (0,) * 8
        )
        if tuple(node.persisted_counters) != persisted:
            violations.append(
                "node %d: persisted-counter mirror diverged from NVM"
                % line.addr
            )
        if node.max_drift() >= LSB_SPAN:
            violations.append(
                "node %d: counter drift %d breaches the LSB span"
                % (line.addr, node.max_drift())
            )
        matches_nvm = tuple(node.counters) == persisted
        if line.dirty and matches_nvm:
            violations.append(
                "node %d: dirty but identical to its NVM image"
                % line.addr
            )
        if not line.dirty and not matches_nvm:
            violations.append(
                "node %d: clean but differs from its NVM image"
                % line.addr
            )
    return violations


def _check_nvm_images(machine) -> List[str]:
    violations: List[str] = []
    controller = machine.controller
    geometry = controller.geometry
    for line in machine.nvm.meta_lines():
        image = machine.nvm.peek_meta(line)
        node_id = geometry.node_at(line)
        # a parent counter moves only when *this* node persists, and
        # each persist rewrites the image — so every NVM image verifies
        # against the live parent counter at all times
        parent_counter = controller._peek_parent_counter(node_id)
        if not controller.auth.verify_node_image(
            node_id, image, parent_counter
        ):
            violations.append(
                "metadata line %d: NVM image fails verification "
                "against the live parent counter" % line
            )
    return violations


def _check_adr(machine) -> List[str]:
    """Section III-C residency: ADR and the spilled set are disjoint.

    A bitmap line has exactly one live home — the battery-backed ADR
    (resident) or the NVM recovery area (spilled). Both claims at once
    means either the crash flush would double-write the line or a stale
    RA copy could win during recovery.
    """
    violations: List[str] = []
    adr = machine.scheme.bitmap.adr
    for key, _value in adr.items():
        if key in adr.spilled:
            violations.append(
                "bitmap line %r is resident in ADR but also claimed "
                "spilled to the recovery area" % (key,)
            )
    for key in sorted(adr.spilled):
        if key not in adr and not machine.nvm.ra_is_touched(key):
            violations.append(
                "bitmap line %r is claimed spilled but has no "
                "recovery-area copy" % (key,)
            )
    return violations


def _check_bitmap(machine) -> List[str]:
    violations: List[str] = []
    bitmap = machine.scheme.bitmap
    dirty = {
        line.addr for line in machine.controller.meta_cache.dirty_lines()
    }
    for line in machine.controller.meta_cache.lines():
        stale = bitmap.is_stale(line.addr)
        if stale != (line.addr in dirty):
            violations.append(
                "bitmap bit for line %d is %s but the cache line is %s"
                % (line.addr, stale, "dirty" if line.addr in dirty
                   else "clean")
            )
    return violations
