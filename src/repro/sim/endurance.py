"""NVM wear and lifetime analysis.

The paper's opening motivation is PCM's limited cell endurance (1e7-1e9
writes) and high write energy — the reason write amplification is
unacceptable (Section I, Section II-E on strict persistence). This
module turns the NVM device's per-line write counts into a wear report
so that the schemes' endurance impact can be compared directly:

* the *hottest line* bounds the device's lifetime (absent wear
  leveling),
* Anubis concentrates writes on shadow-table slots that mirror hot
  cache sets; strict persistence hammers the tree's top levels;
  STAR's extra writes (bitmap spills) are both few and spread by LRU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.mem.nvm import NVM

PCM_ENDURANCE_WRITES = 10 ** 8
"""A mid-range PCM cell endurance (paper: 1e7-1e9 for PCM)."""


@dataclass(frozen=True)
class WearReport:
    """Wear summary of one NVM device after a run."""

    total_writes: int
    lines_touched: int
    max_wear: int
    hottest_line: Optional[Tuple[str, object]]
    per_region_max: Dict[str, int]

    @property
    def mean_wear(self) -> float:
        if self.lines_touched == 0:
            return 0.0
        return self.total_writes / self.lines_touched

    @property
    def imbalance(self) -> float:
        """Hottest line's wear over the mean (1.0 = perfectly even).

        Without wear leveling the hottest line dies first; schemes with
        high imbalance burn out early even at modest total traffic.
        """
        mean = self.mean_wear
        if mean == 0:
            return 0.0
        return self.max_wear / mean

    def lifetime_fraction_consumed(
        self, cell_endurance: int = PCM_ENDURANCE_WRITES
    ) -> float:
        """Share of the hottest line's endurance this run consumed."""
        if cell_endurance < 1:
            raise ValueError("cell endurance must be positive")
        return self.max_wear / cell_endurance


def wear_report(nvm: NVM) -> WearReport:
    """Summarize the per-line write counts of a device."""
    if not nvm.wear:
        return WearReport(
            total_writes=0, lines_touched=0, max_wear=0,
            hottest_line=None, per_region_max={},
        )
    hottest_line, max_wear = max(
        nvm.wear.items(), key=lambda item: item[1]
    )
    per_region_max: Dict[str, int] = {}
    for (region, _key), count in nvm.wear.items():
        if count > per_region_max.get(region, 0):
            per_region_max[region] = count
    return WearReport(
        total_writes=sum(nvm.wear.values()),
        lines_touched=len(nvm.wear),
        max_wear=max_wear,
        hottest_line=hottest_line,
        per_region_max=per_region_max,
    )
