"""Simulator: controller, machine, timing/energy models, crash harness."""

from repro.sim.controller import SecureMemoryController
from repro.sim.crash import Attacker
from repro.sim.endurance import WearReport, wear_report
from repro.sim.energy import EnergyBreakdown, energy_from_stats
from repro.sim.machine import Machine
from repro.sim.projection import (
    RecoveryProjection,
    project,
    project_anubis_seconds,
    project_star_seconds,
)
from repro.sim.registers import OnChipRegisters
from repro.sim.results import RunResult
from repro.sim.timing import TimingModel
from repro.sim.validate import audit_machine

__all__ = [
    "Attacker",
    "EnergyBreakdown",
    "Machine",
    "OnChipRegisters",
    "RecoveryProjection",
    "RunResult",
    "SecureMemoryController",
    "TimingModel",
    "WearReport",
    "audit_machine",
    "energy_from_stats",
    "project",
    "project_anubis_seconds",
    "project_star_seconds",
    "wear_report",
]
