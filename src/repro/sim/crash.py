"""Attack injection for the recovery-verification experiments.

The threat model (Section II-A) grants the attacker full physical access
to the NVM between the crash and the end of recovery: they can tamper
with or replay any line — stale node MSBs, child (data, MAC, LSB) tuples,
bitmap lines in the recovery area. The cache-tree (Section III-E) must
detect all of it.

:class:`Attacker` wraps the NVM's stat-free tamper interface with the
concrete attacks discussed in the paper, including the replay attack of
Section III-E (substituting an *old but internally consistent* tuple,
which plain MAC checking cannot catch).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.mem.nvm import NVM, BitmapLineKey
from repro.tree.node import DataLineImage, NodeImage


class Attacker:
    """Physical-access attacks on a (possibly crashed) NVM."""

    def __init__(self, nvm: NVM) -> None:
        self._nvm = nvm
        self._data_snapshots: Dict[int, Optional[DataLineImage]] = {}
        self._meta_snapshots: Dict[int, Optional[NodeImage]] = {}

    # ------------------------------------------------------------------
    # recording old tuples for later replay
    # ------------------------------------------------------------------
    def snapshot_data_line(self, line: int) -> None:
        """Record the current (data, MAC, LSB) tuple of a line."""
        self._data_snapshots[line] = self._nvm.peek_data(line)

    def snapshot_meta_line(self, meta_index: int) -> None:
        self._meta_snapshots[meta_index] = self._nvm.peek_meta(meta_index)

    def replay_data_line(self, line: int) -> bool:
        """Replay the recorded old tuple (Section III-E's attack).

        Returns False when the snapshot equals the current content (the
        replay would be a no-op and undetectable by definition).
        """
        if line not in self._data_snapshots:
            raise KeyError("no snapshot recorded for data line %d" % line)
        old = self._data_snapshots[line]
        if old is None or old == self._nvm.peek_data(line):
            return False
        self._nvm.tamper_data(line, old)
        return True

    def replay_meta_line(self, meta_index: int) -> bool:
        if meta_index not in self._meta_snapshots:
            raise KeyError(
                "no snapshot recorded for metadata line %d" % meta_index
            )
        old = self._meta_snapshots[meta_index]
        if old is None or old == self._nvm.peek_meta(meta_index):
            return False
        self._nvm.tamper_meta(meta_index, old)
        return True

    # ------------------------------------------------------------------
    # direct corruption
    # ------------------------------------------------------------------
    def corrupt_meta_counter(self, meta_index: int, slot: int,
                             delta: int = 1) -> bool:
        """Perturb one stale counter's MSBs in NVM."""
        image = self._nvm.peek_meta(meta_index)
        if image is None:
            return False
        counters = list(image.counters)
        counters[slot] = max(0, counters[slot] + delta)
        self._nvm.tamper_meta(
            meta_index, replace(image, counters=tuple(counters))
        )
        return True

    def corrupt_data_lsbs(self, line: int, flip: int = 1) -> bool:
        """Flip bits in a data line's synergized LSB field."""
        image = self._nvm.peek_data(line)
        if image is None:
            return False
        self._nvm.tamper_data(line, replace(image, lsbs=image.lsbs ^ flip))
        return True

    def corrupt_data_mac(self, line: int, flip: int = 1) -> bool:
        image = self._nvm.peek_data(line)
        if image is None:
            return False
        self._nvm.tamper_data(line, replace(image, mac=image.mac ^ flip))
        return True

    def corrupt_meta_lsbs(self, meta_index: int, flip: int = 1) -> bool:
        image = self._nvm.peek_meta(meta_index)
        if image is None:
            return False
        self._nvm.tamper_meta(
            meta_index, replace(image, lsbs=image.lsbs ^ flip)
        )
        return True

    def corrupt_bitmap_line(self, key: BitmapLineKey,
                            flip_bit: int = 0) -> None:
        """Flip a bit of a recovery-area bitmap line (hide/fake a stale
        location)."""
        value = self._nvm.peek_ra(key)
        self._nvm.tamper_ra(key, value ^ (1 << flip_bit))
