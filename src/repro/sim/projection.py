"""Analytic projection of recovery time to arbitrary machine scales.

Fig. 14(b) reports recovery time for metadata caches up to 4 MB on a
16 GB machine — sizes a pure-Python functional simulation cannot hold.
The paper itself uses an analytic cost model there ("we assume that
fetching and updating one metadata (64 bytes) from NVM consume 100ns"),
so this module does the same: it takes the per-line access counts
*measured* on the scaled simulation and replays them at any cache size.

* STAR restores only the stale lines: the dirty fraction of the cache
  times ~11 line accesses each (1 stale read + 8 child reads + 1 parent
  read + 1 write, Section IV-F).
* Anubis scans its shadow table, which mirrors the whole cache:
  ~3 accesses per cache line (ST read + node read + node write).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LINE_SIZE

PAPER_LINE_ACCESS_NS = 100.0
"""The per-64B-line NVM access cost the paper assumes (Section IV-F)."""

STAR_ACCESSES_PER_STALE_LINE = 11.0
"""Paper model: 10 reads (self + 8 children + parent) + 1 write."""

ANUBIS_ACCESSES_PER_CACHE_LINE = 3.0
"""Paper model: ST read + node read + node write per shadowed slot."""


@dataclass(frozen=True)
class RecoveryProjection:
    """Projected recovery time for one metadata cache size."""

    cache_bytes: int
    star_seconds: float
    anubis_seconds: float

    @property
    def cache_lines(self) -> int:
        return self.cache_bytes // LINE_SIZE


def project_star_seconds(cache_bytes: int,
                         dirty_fraction: float,
                         accesses_per_stale: float =
                         STAR_ACCESSES_PER_STALE_LINE,
                         line_ns: float = PAPER_LINE_ACCESS_NS) -> float:
    """STAR's recovery time for a cache of ``cache_bytes``."""
    if not 0.0 <= dirty_fraction <= 1.0:
        raise ValueError("dirty fraction must be in [0, 1]")
    lines = cache_bytes // LINE_SIZE
    return lines * dirty_fraction * accesses_per_stale * line_ns * 1e-9


def project_anubis_seconds(cache_bytes: int,
                           accesses_per_line: float =
                           ANUBIS_ACCESSES_PER_CACHE_LINE,
                           line_ns: float = PAPER_LINE_ACCESS_NS
                           ) -> float:
    """Anubis' recovery time: fixed by the cache size, not dirtiness."""
    lines = cache_bytes // LINE_SIZE
    return lines * accesses_per_line * line_ns * 1e-9


def project(cache_bytes: int, dirty_fraction: float,
            star_accesses_per_stale: float = STAR_ACCESSES_PER_STALE_LINE,
            anubis_accesses_per_line: float =
            ANUBIS_ACCESSES_PER_CACHE_LINE,
            line_ns: float = PAPER_LINE_ACCESS_NS) -> RecoveryProjection:
    """Both schemes at once (one row of Fig. 14b)."""
    return RecoveryProjection(
        cache_bytes=cache_bytes,
        star_seconds=project_star_seconds(
            cache_bytes, dirty_fraction, star_accesses_per_stale, line_ns
        ),
        anubis_seconds=project_anubis_seconds(
            cache_bytes, anubis_accesses_per_line, line_ns
        ),
    )
