"""Run-result records shared by tests, examples and the bench harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.schemes.base import RecoveryReport


@dataclass
class RunResult:
    """Everything one simulated run produced."""

    scheme: str
    workload: str
    stats: Dict[str, int]
    instructions: int = 0
    cycles: float = 0.0
    ipc: float = 0.0
    energy_read_nj: float = 0.0
    energy_write_nj: float = 0.0
    energy_static_nj: float = 0.0
    dirty_fraction: float = 0.0
    adr_hit_ratio: float = 0.0
    recovery: Optional[RecoveryReport] = None
    extras: Dict[str, object] = field(default_factory=dict)
    """Free-form extensions; under ``"telemetry"`` the machine places
    ``{"run": <snapshot>, "recovery": <snapshot>}`` dicts produced by
    :func:`repro.obs.export.telemetry_snapshot`."""

    # ------------------------------------------------------------------
    # telemetry accessors
    # ------------------------------------------------------------------
    @property
    def telemetry(self) -> Optional[dict]:
        """The run-phase telemetry snapshot, if it was collected."""
        bundle = self.extras.get("telemetry")
        return bundle.get("run") if isinstance(bundle, dict) else None

    @property
    def recovery_telemetry(self) -> Optional[dict]:
        """The recovery-phase telemetry snapshot, if a recovery ran."""
        bundle = self.extras.get("telemetry")
        return (
            bundle.get("recovery") if isinstance(bundle, dict) else None
        )

    # ------------------------------------------------------------------
    # derived traffic metrics (the quantities of Figs. 10/11)
    # ------------------------------------------------------------------
    @property
    def nvm_writes(self) -> int:
        """All NVM line writes, every region."""
        return (
            self.stats.get("nvm.data_writes", 0)
            + self.stats.get("nvm.meta_writes", 0)
            + self.stats.get("nvm.ra_writes", 0)
            + self.stats.get("nvm.st_writes", 0)
        )

    @property
    def nvm_reads(self) -> int:
        return (
            self.stats.get("nvm.data_reads", 0)
            + self.stats.get("nvm.meta_reads", 0)
            + self.stats.get("nvm.ra_reads", 0)
            + self.stats.get("nvm.st_reads", 0)
        )

    @property
    def baseline_writes(self) -> int:
        """Data + metadata writes: what the WB scheme would count."""
        return (
            self.stats.get("nvm.data_writes", 0)
            + self.stats.get("nvm.meta_writes", 0)
        )

    @property
    def bitmap_writes(self) -> int:
        """Recovery-area spills (STAR's only extra write traffic)."""
        return self.stats.get("nvm.ra_writes", 0)

    @property
    def st_writes(self) -> int:
        """Shadow-table writes (Anubis' extra write traffic)."""
        return self.stats.get("nvm.st_writes", 0)

    @property
    def energy_nj(self) -> float:
        return (
            self.energy_read_nj + self.energy_write_nj
            + self.energy_static_nj
        )

    def normalized_writes(self, baseline: "RunResult") -> float:
        """Write traffic relative to a baseline run (Fig. 11 y-axis)."""
        if baseline.nvm_writes == 0:
            return 0.0
        return self.nvm_writes / baseline.nvm_writes

    def normalized_ipc(self, baseline: "RunResult") -> float:
        """IPC relative to a baseline run (Fig. 12 y-axis)."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def normalized_energy(self, baseline: "RunResult") -> float:
        """Energy relative to a baseline run (Fig. 13 y-axis)."""
        if baseline.energy_nj == 0:
            return 0.0
        return self.energy_nj / baseline.energy_nj
