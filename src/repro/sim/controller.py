"""The secure memory controller.

Implements the machinery all evaluated schemes share (Section II):

* counter-mode encryption of user-data lines (Section II-B),
* the lazy SGX integrity tree (Section II-C): fetching a metadata node
  verifies it against its parent's counter (recursively, up to the first
  cached — hence trusted — ancestor or the on-chip root); persisting a
  node increments exactly one counter in its parent,
* the security-metadata cache with its eviction cascade, including the
  forced flush that keeps every counter within 2^10 increments of its
  persisted value (the counter-MAC synergization invariant of
  Section III-B),
* Synergy-style data-line MACs persisted in the same atomic line write as
  the data (Section II-D).

Scheme-specific behaviour (bitmap updates, shadow-table writes, branch
write-through) is delegated to the attached
:class:`~repro.schemes.base.PersistenceScheme` via its hooks.

A note on pinning: evicting a dirty node requires its parent, whose fetch
may itself evict nodes. Every line involved in the ongoing operation is
pinned so the LRU victim search cannot select it; pins are released when
the public entry point returns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import LINE_SIZE, LSB_BITS, SystemConfig
from repro.core.cachetree import CacheTree
from repro.crypto.otp import CounterModeEngine
from repro.errors import ConfigError, IntegrityError
from repro.mem.cache import SetAssociativeCache, CacheLine
from repro.mem.layout import MemoryLayout
from repro.mem.nvm import NVM
from repro.sim.registers import OnChipRegisters
from repro.tree.geometry import NodeId
from repro.tree.node import CachedNode
from repro.tree.sit import SITAuthenticator
from repro.util.bitfield import mask
from repro.util.stats import Stats

ZERO_LINE = bytes(LINE_SIZE)
_LSB_MASK = mask(LSB_BITS)


class SecureMemoryController:
    """CME + lazy SIT + metadata cache, parameterized by a scheme."""

    def __init__(self, config: SystemConfig, nvm: NVM, scheme,
                 registers: Optional[OnChipRegisters] = None,
                 stats: Optional[Stats] = None) -> None:
        self.config = config
        self.nvm = nvm
        self.stats = stats if stats is not None else nvm.stats
        self.layout = MemoryLayout.from_config(config)
        self.geometry = self.layout.geometry
        self.auth = SITAuthenticator(config.crypto_key)
        self.cme = CounterModeEngine(config.crypto_key)
        if config.metadata_cache.ways < 2:
            raise ConfigError(
                "the metadata cache needs >= 2 ways: persist cascades "
                "pin a node and its parent, which may share a set"
            )
        self.meta_cache = SetAssociativeCache(
            config.metadata_cache, name="meta_cache", stats=self.stats
        )
        self.cache_tree = CacheTree(
            config.crypto_key, self.meta_cache.num_sets,
            config.star.cache_tree_arity,
        )
        self.registers = registers if registers is not None \
            else OnChipRegisters()
        self._flush_threshold = config.star.counter_flush_threshold
        self._cascade_depth = 0
        self._cascade_peak = 0
        # per-persist instruments, bound once — this path is hot
        registry = self.stats.registry
        self._sit_level_writes: Dict[int, object] = {}
        self._persist_level_hist = (
            registry.histogram("sit.persist_level")
            if registry.enabled else None
        )
        self._cascade_hist = (
            registry.histogram("ctrl.cascade_depth")
            if registry.enabled else None
        )
        self.scheme = scheme
        scheme.attach(self)

    # ==================================================================
    # public API
    # ==================================================================
    def write_data(self, address: int,
                   plaintext: Optional[bytes] = None) -> None:
        """Encrypt and persist one user-data line.

        The covering counter block's counter increments (making it dirty
        in the metadata cache), the line is encrypted under the fresh
        counter and written together with its MAC side-band carrying the
        counter's 10 LSBs — one atomic NVM line write.
        """
        if plaintext is None:
            plaintext = ZERO_LINE
        pins: List[int] = []
        try:
            cb_id = self.geometry.counter_block_for(address)
            block = self._get_node(cb_id, pins)
            self._pin(self.geometry.meta_index(cb_id), pins)
            slot = self.geometry.data_slot(address)
            block.increment(slot)
            self._mark_dirty(cb_id)
            self.scheme.on_parent_modified(cb_id, block, slot)
            counter = block.counters[slot]
            ciphertext = self.cme.encrypt(plaintext, address, counter)
            image = self.auth.make_data_image(address, ciphertext, counter)
            self.nvm.write_data(address, image)
            self.stats.add("ctrl.data_writes")
            self.scheme.on_data_persist(address, image)
            if block.drift(slot) >= self._flush_threshold:
                self.stats.add("ctrl.force_flushes")
                self.stats.event("force_flush", level=cb_id[0],
                                 index=cb_id[1], slot=slot)
                self._persist_node(cb_id, block, pins)
            self.scheme.after_data_write(address, cb_id)
        finally:
            self._unpin_all(pins)

    def read_data(self, address: int) -> bytes:
        """Fetch, verify and decrypt one user-data line."""
        pins: List[int] = []
        try:
            self.stats.add("ctrl.data_reads")
            image = self.nvm.read_data(address)
            cb_id = self.geometry.counter_block_for(address)
            block = self._get_node(cb_id, pins)
            counter = block.counters[self.geometry.data_slot(address)]
            if image is None:
                if counter != 0:
                    raise IntegrityError(
                        "data line %d has a non-zero counter but no "
                        "NVM content" % address
                    )
                return ZERO_LINE
            if not self.auth.verify_data_image(address, image, counter):
                raise IntegrityError(
                    "MAC mismatch reading data line %d" % address
                )
            return self.cme.decrypt(image.ciphertext, address, counter)
        finally:
            self._unpin_all(pins)

    def flush_metadata_cache(self) -> None:
        """Persist every dirty metadata line (test/benchmark helper)."""
        pins: List[int] = []
        try:
            while True:
                dirty = sorted(
                    line.addr for line in self.meta_cache.dirty_lines()
                )
                if not dirty:
                    return
                for addr in dirty:
                    line = self.meta_cache.lookup(addr, touch=False)
                    if line is not None and line.dirty:
                        self._persist_node(
                            self.geometry.node_at(addr), line.payload, pins
                        )
        finally:
            self._unpin_all(pins)

    def persist_metadata_line(self, node_id: NodeId) -> None:
        """Write one metadata node through to NVM (it stays cached,
        clean). Its parent picks up the counter increment and turns
        dirty — the lazy-SIT persist event in isolation."""
        pins: List[int] = []
        try:
            node = self._get_node(node_id, pins)
            self._pin(self.geometry.meta_index(node_id), pins)
            self._persist_node(node_id, node, pins)
        finally:
            self._unpin_all(pins)

    def persist_branch(self, node_id: NodeId) -> None:
        """Write ``node_id`` and all its ancestors through to NVM.

        This is the eager-update path used by the strict-persistence
        baseline: after it, the whole modified branch is clean.
        """
        pins: List[int] = []
        try:
            current: Optional[NodeId] = node_id
            while current is not None:
                node = self._get_node(current, pins)
                self._pin(self.geometry.meta_index(current), pins)
                self._persist_node(current, node, pins)
                if self.geometry.is_top_level(current):
                    current = None
                else:
                    current = self.geometry.parent_of(current)
        finally:
            self._unpin_all(pins)

    # ------------------------------------------------------------------
    # inspection (no NVM traffic counted)
    # ------------------------------------------------------------------
    def dirty_fraction(self) -> float:
        """Dirty share of resident metadata lines (Fig. 14a)."""
        resident = len(self.meta_cache)
        if resident == 0:
            return 0.0
        return self.meta_cache.dirty_count() / resident

    def dirty_mac_entries(self) -> List[Tuple[int, int]]:
        """(address, current MAC) of each dirty cached metadata line."""
        entries = []
        for line in self.meta_cache.dirty_lines():
            node_id = self.geometry.node_at(line.addr)
            entries.append((line.addr, self.current_node_mac(node_id)))
        return entries

    def compute_cache_tree_root(self) -> int:
        """The cache-tree root over the current dirty cache population.

        In hardware this register is maintained incrementally as lines
        turn dirty (Section III-E); computing it on demand yields the
        identical value.
        """
        return self.cache_tree.root_from_entries(self.dirty_mac_entries())

    def current_node_mac(self, node_id: NodeId) -> int:
        """The MAC a node would carry if persisted right now."""
        counters = self._peek_counters(node_id)
        parent_counter = self._peek_parent_counter(node_id)
        return self.auth.node_mac(
            node_id, counters, parent_counter, parent_counter & _LSB_MASK
        )

    def cached_node(self, node_id: NodeId) -> Optional[CachedNode]:
        """The cached copy of ``node_id`` if resident (tests/oracles)."""
        line = self.meta_cache.lookup(
            self.geometry.meta_index(node_id), touch=False
        )
        return None if line is None else line.payload

    # ==================================================================
    # internals
    # ==================================================================
    def _pin(self, addr: int, pins: List[int]) -> None:
        self.meta_cache.pin(addr)
        pins.append(addr)

    def _unpin_all(self, pins: List[int]) -> None:
        for addr in pins:
            self.meta_cache.unpin(addr)
        pins.clear()

    def _get_node(self, node_id: NodeId, pins: List[int]) -> CachedNode:
        """Return the cached node, fetching and verifying on a miss."""
        addr = self.geometry.meta_index(node_id)
        line = self.meta_cache.lookup(addr)
        if line is not None:
            self.stats.add("meta_cache.hits")
            return line.payload
        self.stats.add("meta_cache.misses")
        image, touched = self.nvm.read_meta(addr)
        parent_counter = self._parent_counter_for(node_id, pins)
        # fetching the parent can trigger an eviction cascade that
        # persists a dirty sibling — which fetches and installs *this*
        # node as the sibling's parent; its copy is the authoritative one
        line = self.meta_cache.lookup(addr)
        if line is not None:
            return line.payload
        if touched:
            self.stats.add("ctrl.verifications")
            if not self.auth.verify_node_image(
                node_id, image, parent_counter
            ):
                raise IntegrityError(
                    "MAC mismatch fetching metadata node %r" % (node_id,)
                )
        elif parent_counter != 0:
            # the parent's counter counts this node's persists: a
            # non-zero value with no NVM image means the line was erased
            # (the zero-init trust only covers never-persisted nodes)
            raise IntegrityError(
                "metadata node %r was persisted %d times but its NVM "
                "line is missing" % (node_id, parent_counter)
            )
        return self._install(addr, CachedNode.from_image(image), pins)

    def _parent_counter_for(self, node_id: NodeId,
                            pins: List[int]) -> int:
        """The parent's counter for ``node_id`` (fetching the parent)."""
        if self.geometry.is_top_level(node_id):
            return self.registers.sit_root.counters[node_id[1]]
        parent_id = self.geometry.parent_of(node_id)
        parent = self._get_node(parent_id, pins)
        return parent.counters[self.geometry.slot_in_parent(node_id)]

    def _install(self, addr: int, cached: CachedNode,
                 pins: List[int], dirty: bool = False) -> CachedNode:
        """Insert a line, persisting/evicting LRU victims as needed.

        Evicting a dirty victim persists it, which fetches *its* parent —
        and that parent may be exactly the line being installed here. The
        loop therefore re-probes after every eviction and, when a cascade
        has already installed the line, returns the resident copy (it is
        the authoritative one: the cascade may have incremented its
        counters since ``cached`` was read from NVM).
        """
        while True:
            line = self.meta_cache.lookup(addr, touch=False)
            if line is not None:
                return line.payload
            victim = self.meta_cache.victim_for(addr)
            if victim is None:
                break
            self._evict_line(victim, pins)
        self.meta_cache.insert(addr, cached, dirty)
        self.scheme.on_cache_install(addr)
        return cached

    def _evict_line(self, victim: CacheLine, pins: List[int]) -> None:
        self.stats.add("ctrl.meta_evictions")
        self.stats.event("meta_evict", addr=victim.addr,
                         dirty=victim.dirty)
        if victim.dirty:
            # scoped pin: protect the victim only while it persists, so
            # deep cascades don't accumulate pins and starve a set
            self.meta_cache.pin(victim.addr)
            try:
                node_id = self.geometry.node_at(victim.addr)
                self._persist_node(node_id, victim.payload, pins)
            finally:
                self.meta_cache.unpin(victim.addr)
        self.meta_cache.remove(victim.addr)
        self.scheme.on_cache_evict(victim.addr)

    def _mark_dirty(self, node_id: NodeId) -> None:
        addr = self.geometry.meta_index(node_id)
        if self.meta_cache.mark_dirty(addr):
            self.scheme.on_dirty_transition(addr, True)

    def _persist_node(self, node_id: NodeId, cached: CachedNode,
                      pins: List[int]) -> None:
        """Write one metadata node to NVM (the lazy-SIT persist path).

        Increments the parent's corresponding counter *before* minting
        the image, so the persisted line carries — in its spare MAC bits —
        the LSBs of the parent counter value that already accounts for
        this persist (what recovery must reconstruct).

        Persists nest (force flushes climb the tree; evicting a dirty
        victim persists it, fetching *its* parent); the peak nesting
        depth of each outermost persist is recorded in the
        ``ctrl.cascade_depth`` histogram.
        """
        self._cascade_depth += 1
        if self._cascade_depth > self._cascade_peak:
            self._cascade_peak = self._cascade_depth
        try:
            self._persist_node_inner(node_id, cached, pins)
        finally:
            self._cascade_depth -= 1
            if self._cascade_depth == 0:
                if self._cascade_hist is not None:
                    self._cascade_hist.observe(self._cascade_peak)
                self._cascade_peak = 0

    def _persist_node_inner(self, node_id: NodeId, cached: CachedNode,
                            pins: List[int]) -> None:
        addr = self.geometry.meta_index(node_id)
        if self.geometry.is_top_level(node_id):
            slot = node_id[1]
            root = self.registers.sit_root
            root.increment(slot)
            self.stats.add("ctrl.root_child_persists")
            self.scheme.on_parent_modified(None, root, slot)
            self._write_node_image(node_id, addr, cached,
                                   root.counters[slot])
            return
        parent_id = self.geometry.parent_of(node_id)
        parent = self._get_node(parent_id, pins)
        parent_addr = self.geometry.meta_index(parent_id)
        # scoped pin: the parent must stay resident while its counter
        # is used, but not for the rest of the outer operation
        self.meta_cache.pin(parent_addr)
        try:
            slot = self.geometry.slot_in_parent(node_id)
            parent.increment(slot)
            self._mark_dirty(parent_id)
            self.scheme.on_parent_modified(parent_id, parent, slot)
            self._write_node_image(node_id, addr, cached,
                                   parent.counters[slot])
            if parent.drift(slot) >= self._flush_threshold:
                self.stats.add("ctrl.force_flushes")
                self.stats.event("force_flush", level=parent_id[0],
                                 index=parent_id[1], slot=slot)
                self._persist_node(parent_id, parent, pins)
        finally:
            self.meta_cache.unpin(parent_addr)

    def _write_node_image(self, node_id: NodeId, addr: int,
                          cached: CachedNode,
                          parent_counter: int) -> None:
        """Mint and write the node's image; mark it clean."""
        image = self.auth.make_node_image(
            node_id, cached.snapshot(), parent_counter
        )
        self.nvm.write_meta(addr, image)
        cached.mark_persisted()
        self.stats.add("ctrl.meta_persists")
        level = node_id[0]
        counter = self._sit_level_writes.get(level)
        if counter is None:
            counter = self._sit_level_writes[level] = (
                self.stats.registry.counter("sit.level%d.writes" % level)
            )
        counter.inc()
        if self._persist_level_hist is not None:
            self._persist_level_hist.observe(level)
        self.scheme.on_metadata_persist(node_id, image)
        line = self.meta_cache.lookup(addr, touch=False)
        if line is not None and line.dirty:
            line.dirty = False
            self.scheme.on_dirty_transition(addr, False)

    # ------------------------------------------------------------------
    # traffic-free peeks (hardware state inspection)
    # ------------------------------------------------------------------
    def _peek_counters(self, node_id: NodeId) -> Tuple[int, ...]:
        addr = self.geometry.meta_index(node_id)
        line = self.meta_cache.lookup(addr, touch=False)
        if line is not None:
            return tuple(line.payload.counters)
        image = self.nvm.peek_meta(addr)
        if image is None:
            return (0,) * self.geometry.arity
        return image.counters

    def _peek_parent_counter(self, node_id: NodeId) -> int:
        if self.geometry.is_top_level(node_id):
            return self.registers.sit_root.counters[node_id[1]]
        parent_id = self.geometry.parent_of(node_id)
        slot = self.geometry.slot_in_parent(node_id)
        return self._peek_counters(parent_id)[slot]
