"""On-chip non-volatile registers (the only state that survives a crash
besides the NVM itself, per the threat model of Section II-A).

* ``sit_root`` — the SIT root node: eight counters whose children are the
  top in-NVM tree level. Lazily updated (Section II-C).
* ``cache_tree_root`` — the root of the cache-tree over dirty cached
  metadata (Section III-E).
* ``index_top_line`` — the single top-layer line of the multi-layer
  bitmap index (Section III-D).
"""

from __future__ import annotations

from repro.tree.node import CachedNode


class OnChipRegisters:
    """Non-volatile processor-side registers."""

    __slots__ = ("sit_root", "cache_tree_root", "index_top_line")

    def __init__(self) -> None:
        self.sit_root: CachedNode = CachedNode.zero()
        self.cache_tree_root: int = 0
        self.index_top_line: int = 0

    def __repr__(self) -> str:
        return (
            "OnChipRegisters(root=%r, cache_tree_root=%#x, top_line=%#x)"
            % (self.sit_root.counters, self.cache_tree_root,
               self.index_top_line)
        )
