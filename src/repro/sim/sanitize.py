"""Runtime simulation sanitizers: an opt-in shadow for NVM writes.

``Machine(sanitize=True)`` installs :class:`Sanitizer`, which wraps the
machine's NVM write paths (counted writes *and* the battery-flush
paths), the controller's node-image minting and the STAR bitmap
manager's ADR store, asserting on every line write:

* **64B atomic granularity** — each write carries exactly one
  well-formed line image: a 64-byte ciphertext for data lines, a full
  ``TREE_ARITY``-counter :class:`NodeImage` for metadata lines, a
  bitmap word that fits the index fanout for RA lines;
* **counter monotonicity** — encryption counters written to a metadata
  line never decrease below the high-water mark of previous legitimate
  writes (counters are monotonic by design; a decrease means replayed
  or mis-restored state). ``tamper_*`` writes stay unwrapped — the
  attacker is allowed to violate invariants, detection is the scheme's
  job;
* **in-field value ranges** — every field fits its paper bit budget
  from :data:`repro.core.widths.FIELD_WIDTHS`, and every minted node
  image carries exactly the parent counter's LSBs in its spare MAC bits
  (counter-MAC synergization, Section III-B).

Violations raise :class:`SanitizeError` (an ``AssertionError``
subclass, so plain ``assert``-style handling works). With
``sanitize=False`` (the default) nothing is wrapped and the hot paths
are untouched — the perf gate runs with sanitizers off.

The fuzzer exposes this as ``star-fuzz run --sanitize``.
"""

from __future__ import annotations

from functools import wraps
from typing import Dict, Optional, Tuple

from repro.config import LINE_SIZE, TREE_ARITY
from repro.core.widths import fits
from repro.tree.node import DataLineImage, NodeImage


class SanitizeError(AssertionError):
    """A runtime invariant violated on an NVM line write."""


class Sanitizer:
    """Wraps one machine's write paths with shadow assertions."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self._meta_high: Dict[int, Tuple[int, ...]] = {}
        self._checks = machine.stats.registry.counter("sanitize.checks")
        self._wrapped_bitmaps: set = set()
        self.install()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def install(self) -> None:
        nvm = self.machine.nvm
        self._wrap(nvm, "write_data", self._check_data)
        self._wrap(nvm, "write_meta", self._check_meta)
        self._wrap(nvm, "flush_meta", self._check_meta)
        self._wrap(nvm, "write_ra", self._check_ra)
        self._wrap(nvm, "flush_ra", self._check_ra)
        controller = self.machine.controller
        inner = controller._write_node_image

        @wraps(inner)
        def checked_write_node_image(node_id, addr, cached,
                                     parent_counter):
            inner(node_id, addr, cached, parent_counter)
            try:
                self._check_synergized_lsbs(addr, parent_counter)
            except SanitizeError as error:
                self._trip(error)
                raise

        controller._write_node_image = checked_write_node_image
        self.rewire_scheme()

    def rewire_scheme(self) -> None:
        """(Re-)wrap scheme-owned structures; recovery re-attaches the
        scheme, which rebuilds the STAR bitmap manager, so the machine
        calls this again after every :meth:`Machine.recover`."""
        bitmap = getattr(self.machine.scheme, "bitmap", None)
        if bitmap is None or id(bitmap) in self._wrapped_bitmaps:
            return
        self._wrapped_bitmaps.add(id(bitmap))
        inner = bitmap._store

        @wraps(inner)
        def checked_store(layer, line, value):
            try:
                self._check_bitmap_word(bitmap, layer, line, value)
            except SanitizeError as error:
                self._trip(error)
                raise
            inner(layer, line, value)

        bitmap._store = checked_store

    def _wrap(self, obj, name: str, checker) -> None:
        inner = getattr(obj, name)

        @wraps(inner)
        def checked(*args):
            try:
                checker(*args)
            except SanitizeError as error:
                self._trip(error)
                raise
            return inner(*args)

        setattr(obj, name, checked)

    def _trip(self, error: SanitizeError) -> None:
        """Leave a flight-recorder event before the trip propagates.

        The fuzzer attaches the event-log tail to failure artifacts, so
        a sanitizer trip should be the last event in that tail — the
        message is deterministic, keeping serial-vs-parallel campaign
        results byte-identical.
        """
        stats = self.machine.stats
        stats.event("sanitize_trip", detail=str(error))

    # ------------------------------------------------------------------
    # the checks
    # ------------------------------------------------------------------
    def _check_data(self, line: int, image) -> None:
        self._checks.value += 1
        if not isinstance(image, DataLineImage):
            raise SanitizeError(
                "data line %r write is not a DataLineImage: %r"
                % (line, type(image).__name__)
            )
        if len(image.ciphertext) != LINE_SIZE:
            raise SanitizeError(
                "data line %r write is not 64B-atomic: %d-byte "
                "ciphertext" % (line, len(image.ciphertext))
            )
        self._check_mac_sideband("data line %r" % line, image)

    def _check_meta(self, meta_index: int, image) -> None:
        self._checks.value += 1
        if not isinstance(image, NodeImage):
            raise SanitizeError(
                "metadata line %r write is not a NodeImage: %r"
                % (meta_index, type(image).__name__)
            )
        if len(image.counters) != TREE_ARITY:
            raise SanitizeError(
                "metadata line %r write is not 64B-atomic: %d counters"
                % (meta_index, len(image.counters))
            )
        for slot, counter in enumerate(image.counters):
            if not fits("counter", counter):
                raise SanitizeError(
                    "metadata line %r slot %d counter %d overflows its "
                    "budget" % (meta_index, slot, counter)
                )
        self._check_mac_sideband("metadata line %r" % meta_index, image)
        high = self._meta_high.get(meta_index)
        if high is not None:
            for slot, (old, new) in enumerate(
                zip(high, image.counters)
            ):
                if new < old:
                    raise SanitizeError(
                        "metadata line %r slot %d counter moved "
                        "backwards: %d -> %d (counters are monotonic)"
                        % (meta_index, slot, old, new)
                    )
        self._meta_high[meta_index] = tuple(image.counters)

    def _check_mac_sideband(self, what: str, image) -> None:
        if not fits("mac", image.mac):
            raise SanitizeError(
                "%s MAC %d overflows the MAC budget" % (what, image.mac)
            )
        if not fits("lsbs", image.lsbs):
            raise SanitizeError(
                "%s LSBs %d overflow the spare-bit budget"
                % (what, image.lsbs)
            )

    def _check_ra(self, key, value) -> None:
        self._checks.value += 1
        if not (isinstance(key, tuple) and len(key) == 2):
            raise SanitizeError(
                "recovery-area key %r is not a (layer, line) pair" % (key,)
            )
        if not isinstance(value, int) or value < 0:
            raise SanitizeError(
                "recovery-area write %r is not a bitmap word: %r"
                % (key, value)
            )
        fanout = self._bitmap_fanout()
        if fanout is not None and value.bit_length() > fanout:
            raise SanitizeError(
                "recovery-area word %r exceeds the %d-bit line fanout"
                % (key, fanout)
            )

    def _check_bitmap_word(self, bitmap, layer: int, line: int,
                           value: int) -> None:
        self._checks.value += 1
        index = bitmap.index
        if not 1 <= layer <= index.num_layers:
            raise SanitizeError(
                "bitmap store to nonexistent layer %d" % layer
            )
        if not 0 <= line < index.lines_in_layer(layer):
            raise SanitizeError(
                "bitmap store outside layer %d: line %d" % (layer, line)
            )
        if value < 0 or value.bit_length() > index.fanout:
            raise SanitizeError(
                "bitmap word for (%d, %d) exceeds the %d-bit fanout"
                % (layer, line, index.fanout)
            )

    def _check_synergized_lsbs(self, addr: int,
                               parent_counter: int) -> None:
        self._checks.value += 1
        image = self.machine.nvm.peek_meta(addr)
        lsb_bits = self.machine.config.star.lsb_bits
        expected = parent_counter & ((1 << lsb_bits) - 1)
        if image is None or image.lsbs != expected:
            raise SanitizeError(
                "minted image for metadata line %d does not carry the "
                "parent counter's LSBs (%d != %d): counter-MAC "
                "synergization broken"
                % (addr, -1 if image is None else image.lsbs, expected)
            )

    def _bitmap_fanout(self) -> Optional[int]:
        bitmap = getattr(self.machine.scheme, "bitmap", None)
        if bitmap is None:
            return None
        return bitmap.index.fanout


def install_sanitizers(machine) -> Sanitizer:
    """Attach a :class:`Sanitizer` to ``machine`` and return it."""
    return Sanitizer(machine)
