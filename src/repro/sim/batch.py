"""Batched epoch execution for the simulator hot path.

The scalar path (``Machine.apply``) walks roughly 450 Python calls per
trace op: machine -> hierarchy -> controller -> cache/NVM/stats, each
layer re-deriving addresses and re-binding attributes. This module is
the opt-in alternative: it slices the reference stream into *epochs*,
precomputes per-op address decode / set-index / tree-ancestor math for
the whole epoch at once (with numpy when available), and then replays
the epoch through one fused interpreter whose state lives in local
variables.

The engine operates on the SAME canonical objects the scalar path uses —
the metadata-cache ``OrderedDict`` buckets, the ``CachedNode`` payloads,
the NVM dicts, the write-pending queue, the ADR region behind the STAR
bitmap hooks. It is an execution strategy, not a second model: crash,
recover, audits and mid-run fallback to ``Machine.apply`` all see
exactly the state a scalar replay would have produced. Bit-identical
parity (final NVM image, stats counters, telemetry, timing floats,
recovery reports) is pinned by ``tests/test_batch_parity.py``.

What the fusion changes, and why it is safe:

* **Counter batching** — hot stat counters accumulate in local ints and
  flush through ``Stats.add`` once per run. Addition commutes, and
  counters are only created when non-zero, so snapshots match the
  scalar run exactly (including which counters exist).
* **Deferred distribution flushes** — histogram observations (WPQ
  occupancy, persist levels, cascade depths) accumulate in local
  arrays and merge into the shared ``Histogram`` objects once per run.
  Histogram state (count/total/min/max/buckets) is a commutative
  monoid, so the merged result is identical to per-call observation.
  Gauges likewise: the engine tracks the running level and peak
  locally and stores value + high-watermark at the end.
* **Inlined pure functions** — MAC minting, pad derivation and memo
  lookups run inline against the authenticator's own caches; the bytes
  hashed and the digests produced are exactly those of
  :mod:`repro.tree.sit` / :mod:`repro.crypto.otp` (pinned by the
  parity suite; the serialization helpers are shared).
* **Scheme-hook elision** — hooks a scheme inherits from
  :class:`~repro.schemes.base.PersistenceScheme` are no-ops by
  definition and are skipped; overridden hooks are called at the same
  sequence points with the same arguments.
* **Same-line run preaggregation** — N consecutive persistent writes
  covered by one counter block cost one metadata lookup/pin pass: the
  block is known resident, dirty and most-recently-used, so the
  repeated probe is pure overhead. A run breaks on any event that can
  reorder the metadata cache (force flush, fill, write-back, barrier),
  after which the next write takes the full path again.
* **Float-op order** — the timing model's additions replay in exactly
  the scalar order (per-op instruction advance, per-write WPQ stalls),
  so ``cycles``/``ipc`` match to the last bit. The WPQ's completion
  deque and bank state are mutated in place with the same algorithm as
  :meth:`~repro.mem.writequeue.WritePendingQueue.enqueue`; its
  monotonic-clock guard is provably satisfied inside a run (simulated
  time never decreases), so only the final clock is written back.

Ineligible machines (bank-level device timing, an installed sanitizer
or profiler, an active NVM trace) transparently fall back to the scalar
loop — those features wrap or observe the very calls the fusion
removes.
"""

from __future__ import annotations

import gc as _gc
from typing import List, Optional, Sequence

from repro.config import COUNTER_BITS, LSB_BITS, MAC_BITS
from repro.crypto.hashing import (
    _INT_PART_MEMO,
    encode_int_part,
    encode_str_part,
)
from repro.errors import IntegrityError, RecoveryError
from repro.mem.cache import CacheLine, EvictionDeadlock
from repro.mem.nvm import NVM
from repro.schemes.base import PersistenceScheme
from repro.tree.node import CachedNode, DataLineImage, NodeImage
from repro.util.bitfield import check_width, mask
from repro.workloads.trace import Op, OpKind

try:  # vector prepass; the engine degrades to pure-Python decode
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the image
    _np = None

_LSB_MASK = mask(LSB_BITS)
_MAC_MASK = mask(MAC_BITS)
_COUNTER_LIMIT = 1 << COUNTER_BITS

DEFAULT_EPOCH = 256
"""Default ops per epoch for ``Machine(batch=True)``."""

_NUMPY_MIN_OPS = 32
"""Below this epoch population the numpy round-trip costs more than the
scalar decode it replaces."""

SCALAR_PARITY_EXEMPT = frozenset({
    # Scalar-controller fields the epoch pipeline deliberately never
    # touches; star-lint STAR006 requires every other controller field
    # to be referenced here. Keep each entry justified:
    "config",      # construction-time wiring only; geometry/threshold
                   # are re-derived from it before the hot loop starts
    "layout",      # address-map queries happen through geometry, which
                   # the engine binds directly
    "cache_tree",  # recovery/debug surface; epochs run strictly
                   # between recoveries, so the pipeline never walks it
})

_READ, _WRITE, _PERSIST = 0, 1, 2


def _overridden(scheme, name: str):
    """The scheme's override of hook ``name``, or ``None`` when it
    inherits the base no-op (so the fused loop can skip the call)."""
    if getattr(type(scheme), name) is getattr(PersistenceScheme, name):
        return None
    return getattr(scheme, name)


def eligible(machine) -> bool:
    """Whether ``machine`` can run under the fused epoch engine.

    Device timing, the write sanitizer, the phase profiler and NVM
    address tracing all hook the per-call seams the fusion removes, so
    those machines take the scalar path. So does any machine with a
    subclassed NVM (e.g. wear-leveling remaps the data region inside
    ``write_data``) — the engine's fused stores assume the base model's
    direct line semantics.
    """
    return (
        machine.timing.device is None
        and machine.sanitizer is None
        and machine.profiler is None
        and machine.nvm.trace is None
        and type(machine.nvm) is NVM
    )


def _flush_int_histogram(hist, acc) -> None:
    """Merge an int-indexed observation-count array into a histogram.

    ``acc[v]`` holds how many times value ``v`` was observed. Histogram
    state is commutative, so a deferred bulk merge equals per-call
    ``observe`` exactly (values here are positive ints or zero; zero
    lands in the dedicated zero bucket like ``observe(0)`` would).
    """
    buckets = hist._buckets
    for value, n in enumerate(acc):
        if not n:
            continue
        hist.count += n
        hist.total += value * n
        if hist.min is None or value < hist.min:
            hist.min = value
        if hist.max is None or value > hist.max:
            hist.max = value
        if value > 0:
            exponent = (value - 1).bit_length()
            buckets[exponent] = buckets.get(exponent, 0) + n
        else:
            hist._zero += n


class EpochEngine:
    """Fused epoch interpreter over a machine's canonical state.

    One engine serves one :class:`~repro.sim.machine.Machine`; it holds
    no simulation state of its own beyond the epoch size — every
    :meth:`run` re-binds the machine's current components, so it stays
    correct across crash/recover cycles (which swap the scheme's
    volatile state and reset the WPQ).
    """

    __slots__ = ("machine", "epoch_size")

    def __init__(self, machine, epoch_size: int = DEFAULT_EPOCH) -> None:
        if epoch_size < 1:
            raise ValueError("epoch size must be >= 1")
        self.machine = machine
        self.epoch_size = epoch_size

    # ------------------------------------------------------------------
    # epoch prepass: vectorized decode
    # ------------------------------------------------------------------
    @staticmethod
    def _decode(chunk: Sequence[Op], arity: int, prev_write_cb: int):
        """Per-op arrays for one epoch: kind / addr / instruction gap /
        persistence, the level-0 tree ancestor (counter block) and its
        slot, and the same-counter-block run mask.

        ``prev_write_cb`` is the counter block of the trailing
        persistent write of the previous epoch (or -1), so runs survive
        epoch boundaries.
        """
        kinds: List[int] = []
        addrs: List[int] = []
        gaps: List[int] = []
        pers: List[bool] = []
        read_kind, write_kind = OpKind.READ, OpKind.WRITE
        for op in chunk:
            kind = op.kind
            kinds.append(
                _READ if kind is read_kind
                else _WRITE if kind is write_kind else _PERSIST
            )
            addrs.append(op.addr)
            gaps.append(op.instructions)
            pers.append(op.persistent)
        count = len(kinds)
        if _np is not None and count >= _NUMPY_MIN_OPS:
            addr_vec = _np.asarray(addrs, dtype=_np.int64)
            cb_vec = addr_vec // arity
            slot_vec = addr_vec - cb_vec * arity
            is_pwrite = (
                (_np.asarray(kinds, dtype=_np.int8) == _WRITE)
                & _np.asarray(pers, dtype=bool)
            )
            same = _np.zeros(count, dtype=bool)
            if count > 1:
                same[1:] = (
                    is_pwrite[1:] & is_pwrite[:-1]
                    & (cb_vec[1:] == cb_vec[:-1])
                )
            if is_pwrite[0] and cb_vec[0] == prev_write_cb:
                same[0] = True
            cbs = cb_vec.tolist()
            slots = slot_vec.tolist()
            same_run = same.tolist()
        else:
            cbs = [addr // arity for addr in addrs]
            slots = [addr % arity for addr in addrs]
            same_run = [False] * count
            last_cb = prev_write_cb
            for i in range(count):
                if kinds[i] == _WRITE and pers[i]:
                    same_run[i] = cbs[i] == last_cb
                    last_cb = cbs[i]
                else:
                    last_cb = -1
        return kinds, addrs, gaps, pers, cbs, slots, same_run

    # ------------------------------------------------------------------
    # the fused replay
    # ------------------------------------------------------------------
    def run(self, ops: Sequence[Op]) -> None:
        """Replay ``ops`` through the fused interpreter.

        Raises the same exceptions the scalar path would
        (``RecoveryError`` on a crashed machine, ``IntegrityError`` on
        MAC mismatches); accumulated counters and timing are flushed
        back even when an op raises, so the machine state stays exactly
        as far along as the faulting scalar replay.
        """
        machine = self.machine
        if machine.crashed:
            raise RecoveryError("machine has crashed; recover first")

        # ---------------- bindings: timing ----------------
        timing = machine.timing
        cpu = timing.cpu
        base_cpi = cpu.base_cpi
        cycle_ns = cpu.cycle_ns
        sfence = cpu.sfence_ns
        hit_lat = timing._hit_latency_ns
        hit_top = len(hit_lat) - 1
        read_lat = timing.nvm.read_latency_ns
        now = timing.now_ns
        instructions = timing.instructions
        read_stall = timing.read_stall_ns
        write_stall = timing.write_stall_ns
        barrier_stall = timing.barrier_stall_ns

        # ---------------- bindings: WPQ (inlined timing model) --------
        # The deque and bank state are the queue's own objects, mutated
        # with the same algorithm as WritePendingQueue.enqueue; simulated
        # time is non-decreasing inside a run, so the monotonic-clock
        # guard cannot fire and only the final clock is written back.
        wpq = timing.wpq
        wpq_completions = wpq._completions
        wpq_pop = wpq_completions.popleft
        wpq_push = wpq_completions.append
        wpq_capacity = wpq.capacity
        wpq_service = wpq.service_ns
        wpq_single_port = wpq.ports == 1
        port_free = wpq._port_free_ns[0] if wpq_single_port else 0.0
        occ_hist = wpq._occupancy_hist
        # occupancy is observed pre-insert, so values stay <= capacity
        occ_acc = [0] * (wpq_capacity + 1) if occ_hist is not None else None
        wpq_full_stalls = 0

        # ---------------- bindings: CPU hierarchy ----------------
        cpu_caches = machine.hierarchy._levels
        ncpu = len(cpu_caches)
        lvl_sets = [cache._sets for cache in cpu_caches]
        lvl_nsets = [cache.num_sets for cache in cpu_caches]
        lvl_ways = [cache.ways for cache in cpu_caches]
        lvl_pins = [cache._pinned for cache in cpu_caches]

        # ---------------- bindings: controller ----------------
        ctrl = machine.controller
        geo = ctrl.geometry
        arity = geo.arity
        num_data_lines = geo.num_data_lines
        level_offsets = geo._level_offsets
        num_levels = geo.num_levels
        top_level = geo.top_level
        meta = ctrl.meta_cache
        msets = meta._sets
        mnum_sets = meta.num_sets
        mways = meta.ways
        mpinned = meta._pinned
        meta_gauge = meta._resident_gauge
        meta_res_peak = meta._resident
        root = ctrl.registers.sit_root
        flush_threshold = ctrl._flush_threshold
        persist_hist = ctrl._persist_level_hist
        cascade_hist = ctrl._cascade_hist
        persist_acc = (
            [0] * (num_levels + 1) if persist_hist is not None else None
        )
        cascade_acc: dict = {}

        # ---------------- bindings: crypto (inlined pure functions) ---
        # The caches, prototypes and serialization helpers are the
        # authenticator's / cipher engine's own; the bytes hashed are
        # exactly those of sit.node_mac / sit.data_mac / otp._derive_pad.
        auth = ctrl.auth
        node_mac = auth.node_mac
        data_mac = auth.data_mac
        nmac_cache = auth._node_mac_cache
        dmac_cache = auth._data_mac_cache
        mac_limit = auth._CACHE_LIMIT
        mac_proto_copy = auth._prf._proto.copy
        enc = encode_int_part
        m256 = _INT_PART_MEMO  # enc()'s own small-int table, inlined
        # frozen-image construction bypasses the dataclass __init__ +
        # __post_init__ pair: every field below is valid by construction
        # (counters are width-checked at increment, MACs and LSBs are
        # masked), so the validation would re-prove known facts ~1100
        # times per 300-op cell
        obj_new = object.__new__
        obj_set = object.__setattr__
        node_prefix = encode_str_part("sit-node")
        data_prefix = encode_str_part("sit-data")
        cme = ctrl.cme
        line_size = cme.line_size
        zero_line = bytes(line_size)
        pad_cache = cme._pad_cache
        pad_limit = cme._PAD_CACHE_LIMIT
        pad_proto_copy = cme._prf._proto.copy
        fast_pad = line_size == 64
        derive_pad = cme._derive_pad
        otp_prefix = encode_str_part("otp")
        block0 = enc(0)
        # encode_bytes_part(ciphertext) for the fixed line size
        ct_prefix = b"\x02" + line_size.to_bytes(4, "big")

        # ---------------- bindings: NVM ----------------
        nvm = ctrl.nvm
        nvm_data = nvm._data
        nvm_meta = nvm._meta
        wear = nvm.wear
        c_dr, c_dw = nvm._c_data_reads, nvm._c_data_writes
        c_mr, c_mw = nvm._c_meta_reads, nvm._c_meta_writes
        c_rr, c_rw = nvm._c_ra_reads, nvm._c_ra_writes
        c_sr, c_sw = nvm._c_st_reads, nvm._c_st_writes
        zero_image = NodeImage.zero()
        data_lines_grew = meta_lines_grew = False

        # running totals so each charge point reads the counters once
        last_r = c_dr.value + c_mr.value + c_rr.value + c_sr.value
        last_w = c_dw.value + c_mw.value + c_rw.value + c_sw.value

        # ---------------- bindings: stats / telemetry ----------------
        stats = machine.stats
        gauge_set = stats.gauge_set  # no-op when telemetry is off
        registry = stats.registry
        # stats.event is the instance attribute the flight recorder
        # rebinds when it arms the event log on a dark machine; honoring
        # a rebinding (and the disabled-registry no-op) here keeps that
        # contract while skipping the facade hop on the default path
        emit = stats.__dict__.get("event")
        if emit is None:
            emit = registry.events.emit

        # ---------------- bindings: scheme hooks ----------------
        scheme = ctrl.scheme
        hook_dirty = _overridden(scheme, "on_dirty_transition")
        hook_parent = _overridden(scheme, "on_parent_modified")
        hook_data_persist = _overridden(scheme, "on_data_persist")
        hook_meta_persist = _overridden(scheme, "on_metadata_persist")
        hook_after_write = _overridden(scheme, "after_data_write")
        hook_install = _overridden(scheme, "on_cache_install")
        hook_evict = _overridden(scheme, "on_cache_evict")
        # Run preaggregation assumes nothing outside the fused write
        # path touches the metadata cache between two writes of a run.
        # A scheme whose hooks reach back into the controller (Phoenix's
        # periodic persist, strict's branch write-through) breaks that
        # assumption, so runs stay off for it — every write then takes
        # the full, always-correct path.
        runs_allowed = hook_after_write is None and (
            hook_parent is None
            or getattr(type(scheme), "parent_hook_is_cache_neutral", False)
        )

        # hot counters: accumulate locally, flush once (only if > 0, so
        # the set of created counters matches the scalar run)
        meta_hits = meta_misses = verifications = 0
        data_reads_c = data_writes_c = 0
        force_flushes = meta_evictions = meta_persists = 0
        root_child_persists = 0
        cpu_read_hits = cpu_read_misses = 0
        cpu_write_hits = cpu_write_misses = cpu_llc_wb = 0
        sit_level_acc: dict = {}

        # ---------------- fused controller ops ----------------

        def charge() -> None:
            """Apply the op's NVM traffic to the timing model.

            Reads lump into one stall; each write runs the inlined WPQ
            enqueue, advancing ``now`` exactly like the scalar
            ``TimingModel.memory_writes`` loop.
            """
            nonlocal now, read_stall, write_stall, last_r, last_w
            nonlocal port_free, wpq_full_stalls
            r = c_dr.value + c_mr.value + c_rr.value + c_sr.value
            delta = r - last_r
            if delta:
                last_r = r
                stall = delta * read_lat
                read_stall += stall
                now += stall
            w = c_dw.value + c_mw.value + c_rw.value + c_sw.value
            delta = w - last_w
            if delta:
                last_w = w
                while delta:
                    delta -= 1
                    while wpq_completions and wpq_completions[0] <= now:
                        wpq_pop()
                    depth = len(wpq_completions)
                    if occ_acc is not None:
                        occ_acc[depth] += 1
                    if depth >= wpq_capacity:
                        wpq_full_stalls += 1
                        stall = wpq_completions[0] - now
                        write_stall += stall
                        now += stall
                        while wpq_completions and \
                                wpq_completions[0] <= now:
                            wpq_pop()
                    if wpq_single_port:
                        start = now if now > port_free else port_free
                        port_free = start + wpq_service
                        wpq_push(port_free)
                    else:  # pragma: no cover - multi-bank configs
                        free = wpq._port_free_ns
                        port = min(range(len(free)),
                                   key=free.__getitem__)
                        start = now if now > free[port] else free[port]
                        free[port] = start + wpq_service
                        wpq_push(free[port])

        def spill(from_level: int, addr: int,
                  wb_list: Optional[List[int]]) -> None:
            """Push an evicted CPU line toward memory (dirty only)."""
            nonlocal cpu_llc_wb
            index = from_level + 1
            if index >= ncpu:
                cpu_llc_wb += 1
                if wb_list is not None:
                    wb_list.append(addr)
                return
            bucket = lvl_sets[index][addr % lvl_nsets[index]]
            line = bucket.get(addr)
            if line is not None:
                line.dirty = True
                return
            if len(bucket) >= lvl_ways[index]:
                victim = next(iter(bucket.values()))
                del bucket[victim.addr]
                cpu_caches[index]._resident -= 1
                if victim.dirty:
                    spill(index, victim.addr, wb_list)
            bucket[addr] = CacheLine(addr, None, True)
            cpu_caches[index]._resident += 1

        def fill_through(addr: int, upto: int,
                         wb_list: Optional[List[int]]) -> None:
            """Install ``addr`` clean into CPU levels [0, upto)."""
            stop = upto if upto < ncpu else ncpu
            for index in range(stop):
                bucket = lvl_sets[index][addr % lvl_nsets[index]]
                line = bucket.get(addr)
                if line is not None:
                    bucket.move_to_end(addr)
                    continue
                if len(bucket) >= lvl_ways[index]:
                    victim = None
                    pinned = lvl_pins[index]
                    for cand in bucket.values():
                        if cand.addr not in pinned:
                            victim = cand
                            break
                    if victim is None:
                        raise EvictionDeadlock(
                            "%s: all %d ways of set %d are pinned"
                            % (cpu_caches[index].name, lvl_ways[index],
                               addr % lvl_nsets[index])
                        )
                    del bucket[victim.addr]
                    cpu_caches[index]._resident -= 1
                    if victim.dirty:
                        spill(index, victim.addr, wb_list)
                bucket[addr] = CacheLine(addr, None, False)
                cpu_caches[index]._resident += 1

        def get_node(level: int, index: int, pins: List[int]):
            """Fused ``SecureMemoryController._get_node``."""
            nonlocal meta_hits, meta_misses, verifications
            addr = level_offsets[level] + index
            bucket = msets[addr % mnum_sets]
            line = bucket.get(addr)
            if line is not None:
                bucket.move_to_end(addr)
                meta_hits += 1
                return line.payload
            meta_misses += 1
            c_mr.value += 1
            image = nvm_meta.get(addr)
            touched = image is not None
            if not touched:
                image = zero_image
            if level == top_level:
                parent_counter = root.counters[index]
            else:
                parent = get_node(level + 1, index // arity, pins)
                parent_counter = parent.counters[index % arity]
            # the parent fetch can cascade and install this very node
            line = bucket.get(addr)
            if line is not None:
                bucket.move_to_end(addr)
                return line.payload
            if touched:
                verifications += 1
                counters = image.counters
                lsbs = image.lsbs
                mac = nmac_cache.get(
                    (level, index, counters, parent_counter, lsbs)
                )
                if mac is None:
                    mac = node_mac((level, index), counters,
                                   parent_counter, lsbs)
                if mac != image.mac:
                    raise IntegrityError(
                        "MAC mismatch fetching metadata node %r"
                        % ((level, index),)
                    )
            elif parent_counter != 0:
                raise IntegrityError(
                    "metadata node %r was persisted %d times but its NVM "
                    "line is missing" % ((level, index), parent_counter)
                )
            # CachedNode.from_image minus the arity re-check: the image
            # came from write_image (or is the zero singleton), so its
            # counter tuple already has the right width
            cached = obj_new(CachedNode)
            cached.counters = list(image.counters)
            cached.persisted_counters = list(image.counters)
            # fused _install: evict until the set has room
            while True:
                line = bucket.get(addr)
                if line is not None:
                    return line.payload
                if len(bucket) < mways:
                    break
                victim = None
                for cand in bucket.values():
                    if cand.addr not in mpinned:
                        victim = cand
                        break
                if victim is None:
                    raise EvictionDeadlock(
                        "%s: all %d ways of set %d are pinned"
                        % (meta.name, mways, addr % mnum_sets)
                    )
                evict_line(victim, pins)
            bucket[addr] = CacheLine(addr, cached, False)
            resident = meta._resident + 1
            meta._resident = resident
            nonlocal meta_res_peak
            if resident > meta_res_peak:
                meta_res_peak = resident
            if hook_install is not None:
                hook_install(addr)
            return cached

        def evict_line(victim, pins: List[int]) -> None:
            """Fused ``_evict_line`` (scoped pin while persisting)."""
            nonlocal meta_evictions
            meta_evictions += 1
            vaddr = victim.addr
            emit("meta_evict", addr=vaddr, dirty=victim.dirty)
            if victim.dirty:
                mpinned[vaddr] = mpinned.get(vaddr, 0) + 1
                try:
                    for level in range(num_levels):
                        if vaddr < level_offsets[level + 1]:
                            persist_node(level,
                                         vaddr - level_offsets[level],
                                         victim.payload, pins)
                            break
                finally:
                    count = mpinned.get(vaddr, 0)
                    if count <= 1:
                        mpinned.pop(vaddr, None)
                    else:
                        mpinned[vaddr] = count - 1
            bucket = msets[vaddr % mnum_sets]
            del bucket[vaddr]
            meta._resident -= 1
            if hook_evict is not None:
                hook_evict(vaddr)

        def write_image(level: int, index: int, cached,
                        parent_counter: int) -> None:
            """Fused ``_write_node_image``: mint, write, mark clean."""
            nonlocal meta_persists, meta_lines_grew
            addr = level_offsets[level] + index
            lsbs = parent_counter & _LSB_MASK
            counters = tuple(cached.counters)
            cache_key = (level, index, counters, parent_counter, lsbs)
            mac = nmac_cache.get(cache_key)
            if mac is None:
                if len(nmac_cache) >= mac_limit:
                    nmac_cache.clear()
                chunks = [node_prefix, m256[level],
                          m256[index] if index < 256 else enc(index)]
                for counter in counters:
                    chunks.append(m256[counter] if counter < 256
                                  else enc(counter))
                chunks.append(m256[parent_counter] if parent_counter < 256
                              else enc(parent_counter))
                chunks.append(m256[lsbs] if lsbs < 256 else enc(lsbs))
                state = mac_proto_copy()
                state.update(b"".join(chunks))
                mac = nmac_cache[cache_key] = (
                    int.from_bytes(state.digest(), "big") & _MAC_MASK
                )
            image = obj_new(NodeImage)
            obj_set(image, "counters", counters)
            obj_set(image, "mac", mac)
            obj_set(image, "lsbs", lsbs)
            c_mw.value += 1
            key = ("meta", addr)
            wear[key] = wear.get(key, 0) + 1
            if addr not in nvm_meta:
                meta_lines_grew = True
            nvm_meta[addr] = image
            cached.persisted_counters = list(counters)
            meta_persists += 1
            sit_level_acc[level] = sit_level_acc.get(level, 0) + 1
            if persist_acc is not None:
                persist_acc[level] += 1
            if hook_meta_persist is not None:
                hook_meta_persist((level, index), image)
            line = msets[addr % mnum_sets].get(addr)
            if line is not None and line.dirty:
                line.dirty = False
                if hook_dirty is not None:
                    hook_dirty(addr, False)

        def persist_node(level: int, index: int, cached,
                         pins: List[int]) -> None:
            """Fused ``_persist_node`` (+ ``_persist_node_inner``).

            Cascade depth tracks through the controller's own attributes
            so scheme hooks that re-enter the scalar persist path (e.g.
            Phoenix's periodic persist) keep nesting into the same
            histogram observation, exactly as in a scalar replay.
            """
            nonlocal force_flushes, root_child_persists
            ctrl._cascade_depth += 1
            if ctrl._cascade_depth > ctrl._cascade_peak:
                ctrl._cascade_peak = ctrl._cascade_depth
            try:
                if level == top_level:
                    root.increment(index)
                    root_child_persists += 1
                    if hook_parent is not None:
                        hook_parent(None, root, index)
                    write_image(level, index, cached, root.counters[index])
                    return
                plevel = level + 1
                pindex = index // arity
                parent = get_node(plevel, pindex, pins)
                parent_addr = level_offsets[plevel] + pindex
                mpinned[parent_addr] = mpinned.get(parent_addr, 0) + 1
                try:
                    slot = index % arity
                    pcounters = parent.counters
                    value = pcounters[slot] + 1
                    if value >= _COUNTER_LIMIT:
                        check_width(value, COUNTER_BITS, "counter")
                    pcounters[slot] = value
                    pline = msets[parent_addr % mnum_sets].get(parent_addr)
                    if pline is None:
                        raise KeyError(
                            "%s: line %d not resident"
                            % (meta.name, parent_addr)
                        )
                    if not pline.dirty:
                        pline.dirty = True
                        if hook_dirty is not None:
                            hook_dirty(parent_addr, True)
                    if hook_parent is not None:
                        hook_parent((plevel, pindex), parent, slot)
                    write_image(level, index, cached, value)
                    if (value - parent.persisted_counters[slot]
                            >= flush_threshold):
                        force_flushes += 1
                        emit("force_flush", level=plevel,
                             index=pindex, slot=slot)
                        persist_node(plevel, pindex, parent, pins)
                finally:
                    count = mpinned.get(parent_addr, 0)
                    if count <= 1:
                        mpinned.pop(parent_addr, None)
                    else:
                        mpinned[parent_addr] = count - 1
            finally:
                depth = ctrl._cascade_depth - 1
                ctrl._cascade_depth = depth
                if depth == 0:
                    peak = ctrl._cascade_peak
                    if cascade_hist is not None:
                        cascade_acc[peak] = cascade_acc.get(peak, 0) + 1
                    ctrl._cascade_peak = 0

        def unpin_all(pins: List[int]) -> None:
            for addr in pins:
                count = mpinned.get(addr, 0)
                if count <= 1:
                    mpinned.pop(addr, None)
                else:
                    mpinned[addr] = count - 1
            pins.clear()

        def make_data_image(addr: int, counter: int) -> DataLineImage:
            """Inlined encrypt + data-MAC mint for a zeroed line.

            XORing the pad with an all-zero plaintext returns the pad
            itself, so the scalar ``cme.encrypt`` round-trip through
            int conversion is skipped; the bytes are identical.
            """
            pad_key = (addr, counter)
            ciphertext = pad_cache.get(pad_key)
            if ciphertext is None:
                if fast_pad:
                    state = pad_proto_copy()
                    state.update(
                        otp_prefix + enc(addr)
                        + (m256[counter] if counter < 256 else enc(counter))
                        + block0
                    )
                    ciphertext = state.digest()
                else:  # pragma: no cover - non-64-byte line configs
                    ciphertext = derive_pad(addr, counter)
                if len(pad_cache) >= pad_limit:
                    pad_cache.clear()
                pad_cache[pad_key] = ciphertext
            lsbs = counter & _LSB_MASK
            mac_key = (addr, ciphertext, counter, lsbs)
            mac = dmac_cache.get(mac_key)
            if mac is None:
                if len(dmac_cache) >= mac_limit:
                    dmac_cache.clear()
                state = mac_proto_copy()
                state.update(
                    data_prefix + enc(addr) + ct_prefix + ciphertext
                    + (m256[counter] if counter < 256 else enc(counter))
                    + (m256[lsbs] if lsbs < 256 else enc(lsbs))
                )
                mac = dmac_cache[mac_key] = (
                    int.from_bytes(state.digest(), "big") & _MAC_MASK
                )
            image = obj_new(DataLineImage)
            obj_set(image, "ciphertext", ciphertext)
            obj_set(image, "mac", mac)
            obj_set(image, "lsbs", lsbs)
            return image

        def write_data(addr: int, cb: int, slot: int):
            """Fused ``SecureMemoryController.write_data``.

            Returns the counter block's :class:`CachedNode` when the
            write left it resident, dirty and MRU with no cascade (the
            precondition for continuing a same-line run), else ``None``.
            """
            nonlocal data_writes_c, force_flushes, data_lines_grew
            if not 0 <= addr < num_data_lines:
                raise ValueError("data line %d out of range" % addr)
            pins: List[int] = []
            try:
                block = get_node(0, cb, pins)
                mpinned[cb] = mpinned.get(cb, 0) + 1
                pins.append(cb)
                counters = block.counters
                counter = counters[slot] + 1
                if counter >= _COUNTER_LIMIT:
                    check_width(counter, COUNTER_BITS, "counter")
                counters[slot] = counter
                line = msets[cb % mnum_sets].get(cb)
                if not line.dirty:
                    line.dirty = True
                    if hook_dirty is not None:
                        hook_dirty(cb, True)
                if hook_parent is not None:
                    hook_parent((0, cb), block, slot)
                image = make_data_image(addr, counter)
                c_dw.value += 1
                key = ("data", addr)
                wear[key] = wear.get(key, 0) + 1
                if addr not in nvm_data:
                    data_lines_grew = True
                nvm_data[addr] = image
                data_writes_c += 1
                if hook_data_persist is not None:
                    hook_data_persist(addr, image)
                if counter - block.persisted_counters[slot] \
                        >= flush_threshold:
                    force_flushes += 1
                    emit("force_flush", level=0, index=cb, slot=slot)
                    persist_node(0, cb, block, pins)
                    block = None  # the flush reordered the cache: no run
                if hook_after_write is not None:
                    hook_after_write(addr, (0, cb))
                return block
            finally:
                unpin_all(pins)

        def read_data(addr: int) -> None:
            """Fused ``SecureMemoryController.read_data``.

            The decrypt of the scalar path is pure pad derivation whose
            output the machine discards; everything observable (stats,
            NVM traffic, verification, cache movement) is identical.
            """
            nonlocal data_reads_c
            pins: List[int] = []
            try:
                # scalar order: the read counts (and reads NVM) before
                # the address is validated by counter_block_for
                data_reads_c += 1
                c_dr.value += 1
                image = nvm_data.get(addr)
                if not 0 <= addr < num_data_lines:
                    raise ValueError("data line %d out of range" % addr)
                block = get_node(0, addr // arity, pins)
                counter = block.counters[addr % arity]
                if image is None:
                    if counter != 0:
                        raise IntegrityError(
                            "data line %d has a non-zero counter but no "
                            "NVM content" % addr
                        )
                    return
                ciphertext = image.ciphertext
                lsbs = image.lsbs
                mac = dmac_cache.get((addr, ciphertext, counter, lsbs))
                if mac is None:
                    mac = data_mac(addr, ciphertext, counter, lsbs)
                if mac != image.mac:
                    raise IntegrityError(
                        "MAC mismatch reading data line %d" % addr
                    )
            finally:
                unpin_all(pins)

        # ---------------- the epoch loop ----------------
        epoch_size = self.epoch_size
        ops = list(ops)
        total = len(ops)
        # run state survives epoch boundaries: _decode's same-run mask
        # for an epoch's first op is computed against prev_write_cb
        prev_write_cb = -1
        run_block = None
        # the loop allocates heavily (images, lines, tuples) and keeps
        # no cycles worth collecting mid-run; suspending the cyclic GC
        # avoids threshold collections triggered by that churn
        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        try:
            for start in range(0, total, epoch_size):
                chunk = ops[start:start + epoch_size]
                kinds, addrs, gaps, pers, cbs, slots, same_run = (
                    self._decode(chunk, arity, prev_write_cb)
                )
                for i, kind in enumerate(kinds):
                    gap = gaps[i]
                    instructions += gap
                    now += gap * base_cpi * cycle_ns
                    if kind == _PERSIST:
                        # inlined WPQ drain_time + sfence
                        while wpq_completions and \
                                wpq_completions[0] <= now:
                            wpq_pop()
                        if wpq_completions:
                            stall = wpq_completions[-1] - now
                            barrier_stall += stall
                            now += stall
                        now += sfence
                        run_block = None
                        prev_write_cb = -1
                        continue
                    addr = addrs[i]
                    # ---- run fast path: same counter block, no
                    # cache-visible event since the previous write ----
                    if run_block is not None and same_run[i]:
                        # CPU probe still runs (hit bookkeeping + LRU)
                        hit_level = -1
                        for li in range(ncpu):
                            bucket = lvl_sets[li][addr % lvl_nsets[li]]
                            line = bucket.get(addr)
                            if line is not None:
                                bucket.move_to_end(addr)
                                hit_level = li
                                break
                        if hit_level >= 0:
                            cpu_write_hits += 1
                        else:
                            cpu_write_misses += 1
                        wb: List[int] = []
                        fill_through(
                            addr,
                            hit_level if hit_level >= 0 else ncpu,
                            wb,
                        )
                        for li in range(ncpu):
                            line = lvl_sets[li][
                                addr % lvl_nsets[li]].get(addr)
                            if line is not None:
                                line.dirty = False
                        if hit_level >= 0:
                            now += hit_lat[
                                hit_level if hit_level < hit_top
                                else hit_top
                            ]
                        block = run_block
                        meta_hits += 1
                        counters = block.counters
                        slot = slots[i]
                        counter = counters[slot] + 1
                        if counter >= _COUNTER_LIMIT:
                            check_width(counter, COUNTER_BITS, "counter")
                        counters[slot] = counter
                        if hook_parent is not None:
                            hook_parent((0, cbs[i]), block, slot)
                        image = make_data_image(addr, counter)
                        c_dw.value += 1
                        key = ("data", addr)
                        wear[key] = wear.get(key, 0) + 1
                        if addr not in nvm_data:
                            data_lines_grew = True
                        nvm_data[addr] = image
                        data_writes_c += 1
                        if hook_data_persist is not None:
                            hook_data_persist(addr, image)
                        if counter - block.persisted_counters[slot] \
                                >= flush_threshold:
                            force_flushes += 1
                            cb = cbs[i]
                            emit("force_flush", level=0, index=cb,
                                 slot=slot)
                            pins: List[int] = []
                            mpinned[cb] = mpinned.get(cb, 0) + 1
                            pins.append(cb)
                            try:
                                persist_node(0, cb, block, pins)
                            finally:
                                unpin_all(pins)
                            run_block = None
                        charge()
                        if wb:
                            run_block = None
                            prev_write_cb = -1
                            for line_addr in wb:
                                write_data(
                                    line_addr, line_addr // arity,
                                    line_addr % arity,
                                )
                                charge()
                        if run_block is None:
                            prev_write_cb = -1
                        continue
                    # ---- CPU hierarchy probe (touch on hit) ----
                    hit_level = -1
                    for li in range(ncpu):
                        bucket = lvl_sets[li][addr % lvl_nsets[li]]
                        line = bucket.get(addr)
                        if line is not None:
                            bucket.move_to_end(addr)
                            hit_level = li
                            break
                    if kind == _READ:
                        run_block = None
                        prev_write_cb = -1
                        if hit_level >= 0:
                            cpu_read_hits += 1
                            fill_through(addr, hit_level, None)
                            now += hit_lat[
                                hit_level if hit_level < hit_top
                                else hit_top
                            ]
                            continue
                        cpu_read_misses += 1
                        wb = []
                        fill_through(addr, ncpu, wb)
                        read_data(addr)
                        charge()
                    elif pers[i]:
                        # ---- persistent write (full path) ----
                        if hit_level >= 0:
                            cpu_write_hits += 1
                        else:
                            cpu_write_misses += 1
                        wb = []
                        fill_through(
                            addr, hit_level if hit_level >= 0 else ncpu,
                            wb,
                        )
                        for li in range(ncpu):
                            line = lvl_sets[li][
                                addr % lvl_nsets[li]].get(addr)
                            if line is not None:
                                line.dirty = False
                        if hit_level >= 0:
                            now += hit_lat[
                                hit_level if hit_level < hit_top
                                else hit_top
                            ]
                        cb = cbs[i]
                        run_block = write_data(addr, cb, slots[i])
                        if not runs_allowed:
                            run_block = None
                        charge()
                        if wb:
                            run_block = None
                        elif run_block is not None:
                            prev_write_cb = cb
                    else:
                        # ---- scratch write ----
                        run_block = None
                        if hit_level >= 0:
                            cpu_write_hits += 1
                        else:
                            cpu_write_misses += 1
                        wb = []
                        if hit_level < 0:
                            fill_through(addr, ncpu, wb)
                        else:
                            fill_through(addr, hit_level, wb)
                        l1_line = lvl_sets[0][addr % lvl_nsets[0]].get(
                            addr
                        )
                        l1_line.dirty = True
                        if hit_level >= 0:
                            now += hit_lat[
                                hit_level if hit_level < hit_top
                                else hit_top
                            ]
                        if hit_level < 0:
                            # scratch miss: one fill from memory
                            read_data(addr)
                            charge()
                    # ---- service collected write-backs ----
                    if wb:
                        run_block = None
                        prev_write_cb = -1
                        for line_addr in wb:
                            write_data(
                                line_addr, line_addr // arity,
                                line_addr % arity,
                            )
                            charge()
                    if run_block is None:
                        prev_write_cb = -1
        finally:
            if gc_was_enabled:
                _gc.enable()
            # ---- flush accumulated counters (created only if > 0) ----
            add = stats.add
            if meta_hits:
                add("meta_cache.hits", meta_hits)
            if meta_misses:
                add("meta_cache.misses", meta_misses)
            if verifications:
                add("ctrl.verifications", verifications)
            if data_reads_c:
                add("ctrl.data_reads", data_reads_c)
            if data_writes_c:
                add("ctrl.data_writes", data_writes_c)
            if force_flushes:
                add("ctrl.force_flushes", force_flushes)
            if meta_evictions:
                add("ctrl.meta_evictions", meta_evictions)
            if meta_persists:
                add("ctrl.meta_persists", meta_persists)
            if root_child_persists:
                add("ctrl.root_child_persists", root_child_persists)
            if cpu_read_hits:
                add("cpu.read_hits", cpu_read_hits)
            if cpu_read_misses:
                add("cpu.read_misses", cpu_read_misses)
            if cpu_write_hits:
                add("cpu.write_hits", cpu_write_hits)
            if cpu_write_misses:
                add("cpu.write_misses", cpu_write_misses)
            if cpu_llc_wb:
                add("cpu.llc_writebacks", cpu_llc_wb)
            if wpq_full_stalls:
                add("wpq.full_stalls", wpq_full_stalls)
            sit_counters = ctrl._sit_level_writes
            for level in sorted(sit_level_acc):
                counter = sit_counters.get(level)
                if counter is None:
                    counter = sit_counters[level] = registry.counter(
                        "sit.level%d.writes" % level
                    )
                counter.value += sit_level_acc[level]
            # ---- flush deferred distributions / gauges ----
            if occ_acc is not None:
                _flush_int_histogram(occ_hist, occ_acc)
            if persist_acc is not None:
                _flush_int_histogram(persist_hist, persist_acc)
            if cascade_hist is not None:
                for peak in cascade_acc:
                    n = cascade_acc[peak]
                    cascade_hist.count += n
                    cascade_hist.total += peak * n
                    if cascade_hist.min is None \
                            or peak < cascade_hist.min:
                        cascade_hist.min = peak
                    if cascade_hist.max is None \
                            or peak > cascade_hist.max:
                        cascade_hist.max = peak
                    exponent = (peak - 1).bit_length()
                    cascade_hist._buckets[exponent] = (
                        cascade_hist._buckets.get(exponent, 0) + n
                    )
            if meta_gauge is not None:
                meta_gauge.value = meta._resident
                if meta_res_peak > meta_gauge.high:
                    meta_gauge.high = meta_res_peak
            if data_lines_grew:
                gauge_set("nvm.data_lines_touched", len(nvm_data))
            if meta_lines_grew:
                gauge_set("nvm.meta_lines_touched", len(nvm_meta))
            # ---- write timing / WPQ clocks back ----
            if wpq_single_port:
                wpq._port_free_ns[0] = port_free
            wpq._clock_ns = now
            timing.now_ns = now
            timing.instructions = instructions
            timing.read_stall_ns = read_stall
            timing.write_stall_ns = write_stall
            timing.barrier_stall_ns = barrier_stall


def run_batched(machine, ops: Sequence[Op],
                epoch_size: int = DEFAULT_EPOCH) -> bool:
    """Replay ``ops`` on ``machine`` via the epoch engine if eligible.

    Returns ``True`` when the batched replay ran; ``False`` tells the
    caller to take the scalar path (the machine uses device timing, a
    sanitizer, a profiler, or NVM tracing).
    """
    if not eligible(machine):
        return False
    EpochEngine(machine, epoch_size).run(ops)
    return True
