"""A simple in-order timing model for *relative* IPC (Fig. 12).

The paper reports IPC normalized to the write-back baseline, so what the
model must capture is how each scheme's extra NVM writes translate into
lost cycles: writes occupy the bounded write-pending queue, the queue
drains at the slow PCM write rate (tWR = 300 ns), and persist barriers
stall until it is empty. Reads stall the core for the PCM array read
latency when they miss the hierarchy.

This is deliberately not a pipeline simulator; see DESIGN.md for the
substitution argument.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import CPUConfig, NVMTimings
from repro.mem.writequeue import WritePendingQueue

_DEFAULT_HIT_LATENCY_NS = (1.0, 4.0, 12.0)
"""Per-level cache hit latencies (L1, L2, LLC) at 2 GHz-ish budgets."""


class TimingModel:
    """Accumulates simulated time from instruction and memory events."""

    def __init__(self, cpu: CPUConfig, nvm: NVMTimings,
                 hit_latency_ns: Optional[Sequence[float]] = None,
                 device=None, stats=None) -> None:
        self.cpu = cpu
        self.nvm = nvm
        self.now_ns = 0.0
        self.instructions = 0
        self.read_stall_ns = 0.0
        self.write_stall_ns = 0.0
        self.barrier_stall_ns = 0.0
        self.wpq = WritePendingQueue(
            cpu.write_queue_entries, nvm.t_wr_ns, cpu.write_ports,
            stats=stats,
        )
        self.device = device
        """Optional bank-level :class:`~repro.mem.device.PCMDevice`;
        when set, the machine calls :meth:`device_read` /
        :meth:`device_write` with real addresses instead of the
        flat-latency methods."""
        self._hit_latency_ns = tuple(
            hit_latency_ns if hit_latency_ns is not None
            else _DEFAULT_HIT_LATENCY_NS
        )

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def advance_instructions(self, count: int) -> None:
        """Retire ``count`` instructions at the base CPI."""
        if count < 0:
            raise ValueError("instruction count must be non-negative")
        self.instructions += count
        self.now_ns += count * self.cpu.base_cpi * self.cpu.cycle_ns

    def cache_hit(self, level: int) -> None:
        """A load served by cache level ``level`` (0-based)."""
        index = min(level, len(self._hit_latency_ns) - 1)
        self.now_ns += self._hit_latency_ns[index]

    def memory_reads(self, count: int) -> None:
        """``count`` demand NVM line reads on the critical path."""
        if count <= 0:
            return
        stall = count * self.nvm.read_latency_ns
        self.read_stall_ns += stall
        self.now_ns += stall

    def memory_writes(self, count: int) -> None:
        """``count`` NVM line writes entering the write-pending queue."""
        for _ in range(count):
            stall, _completion = self.wpq.enqueue(self.now_ns)
            self.write_stall_ns += stall
            self.now_ns += stall

    def device_read(self, line: int) -> None:
        """A demand read through the bank-level device (synchronous)."""
        completion = self.device.read(line, self.now_ns)
        self.read_stall_ns += completion - self.now_ns
        self.now_ns = completion

    def device_write(self, line: int) -> None:
        """A posted write through the bank-level device; persist
        barriers wait for bank drain. A full write-queue (more busy
        banks than WPQ entries would cover) backpressures the core."""
        device = self.device
        if device.pending_writes(self.now_ns) >= device.banks and \
                self.cpu.write_queue_entries <= device.banks:
            stall = device.drain_time(self.now_ns)
            self.write_stall_ns += stall
            self.now_ns += stall
        device.write(line, self.now_ns)

    def persist_barrier(self) -> None:
        """clwb+sfence semantics: wait until all queued writes are
        durable, plus the fixed fence cost."""
        if self.device is not None:
            stall = self.device.drain_time(self.now_ns)
        else:
            stall = self.wpq.drain_time(self.now_ns)
        self.barrier_stall_ns += stall
        self.now_ns += stall + self.cpu.sfence_ns

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> float:
        return self.now_ns / self.cpu.cycle_ns

    @property
    def ipc(self) -> float:
        """Instructions per cycle of the simulated run."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles
