"""The full simulated machine.

Wires a workload trace through the CPU cache hierarchy into the secure
memory controller, accumulates timing/energy, and implements the crash /
recovery lifecycle:

* :meth:`Machine.run` replays trace ops,
* :meth:`Machine.crash` models a power failure: the cache-tree root is
  latched into the on-chip register (in hardware it is maintained there
  continuously), the scheme performs its ADR battery flush, all volatile
  state is dropped, and an oracle snapshot of the dirty metadata is kept
  for test verification,
* :meth:`Machine.recover` invokes the scheme's recovery procedure with a
  fresh stat namespace so recovery traffic is reported separately.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from repro.config import SystemConfig
from repro.errors import RecoveryError, VerificationError
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.nvm import NVM
from repro.schemes.base import PersistenceScheme, RecoveryReport
from repro.sim.controller import SecureMemoryController
from repro.sim.energy import energy_from_stats
from repro.sim.registers import OnChipRegisters
from repro.sim.results import RunResult
from repro.sim.timing import TimingModel
from repro.util.stats import Stats
from repro.workloads.trace import Op, OpKind


class Machine:
    """A secure-NVM system under one persistence scheme."""

    def __init__(self, config: SystemConfig,
                 scheme: Union[str, PersistenceScheme] = "star",
                 registers: Optional[OnChipRegisters] = None,
                 nvm: Optional[NVM] = None,
                 telemetry: bool = True,
                 sanitize: bool = False,
                 profile: bool = False,
                 batch: Union[bool, int, None] = None) -> None:
        """``registers`` and ``nvm`` allow booting a machine on state
        that survived a crash (the reboot-after-recovery scenario).
        ``telemetry=False`` turns off histograms/spans/events (counters
        always count) for overhead-sensitive sweeps. ``sanitize=True``
        installs the runtime write sanitizers (``repro.sim.sanitize``);
        ``profile=True`` installs the deterministic phase profiler
        (``repro.obs.profile``); both off by default, so hot paths
        stay unwrapped. ``batch`` opts :meth:`run` into the fused epoch
        pipeline (``repro.sim.batch``): ``True`` uses the default epoch
        size, an int sets it; bit-identical to the scalar path, and
        machines the engine cannot serve (device timing, sanitizer,
        profiler, NVM tracing) silently fall back to scalar replay."""
        self.config = config
        self.stats = Stats(enabled=telemetry)
        self.recovery_stats: Optional[Stats] = None
        if nvm is None:
            self.nvm = NVM(self.stats)
        else:
            self.nvm = nvm
            self.nvm.stats = self.stats
        self.registers = registers if registers is not None \
            else OnChipRegisters()
        if isinstance(scheme, str):
            # imported here to break the schemes -> core -> sim cycle
            from repro.schemes import make_scheme
            scheme = make_scheme(scheme)
        self.scheme = scheme
        self.controller = SecureMemoryController(
            config, self.nvm, scheme, self.registers, self.stats
        )
        levels = [
            cache for cache in (config.l1, config.l2, config.llc)
            if cache is not None
        ]
        self.hierarchy = CacheHierarchy(levels, self.stats)
        device = None
        if config.device_timing:
            from repro.mem.device import PCMDevice

            device = PCMDevice(
                config.nvm, config.device_banks, config.device_row_lines
            )
            self._region_bases = self._build_region_bases()
        self.timing = TimingModel(
            config.cpu, config.nvm, device=device, stats=self.stats
        )
        self.crashed = False
        self.pre_crash_dirty: Dict[int, Tuple[int, ...]] = {}
        self._dirty_fraction_at_crash: Optional[float] = None
        self.sanitizer = None
        if sanitize:
            # imported lazily: the sanitizer is diagnostics, not hot path
            from repro.sim.sanitize import install_sanitizers

            self.sanitizer = install_sanitizers(self)
        self.profiler = None
        if profile:
            # same opt-in wrap-on-install pattern as the sanitizer
            from repro.obs.profile import install_profiler

            self.profiler = install_profiler(self)
        if batch is not None and batch is not False and batch is not True:
            if not isinstance(batch, int) or batch < 1:
                raise ValueError("batch must be True or an epoch size >= 1")
        self.batch = batch

    # ==================================================================
    # running traces
    # ==================================================================
    def run(self, ops: Iterable[Op]) -> None:
        """Replay a trace through the machine.

        With ``batch`` set, the fused epoch pipeline replays the trace
        (falling back to the scalar per-op loop when the machine is
        ineligible); otherwise every op goes through :meth:`apply`.
        """
        batch = self.batch
        if batch:
            from repro.sim.batch import DEFAULT_EPOCH, run_batched

            epoch = DEFAULT_EPOCH if batch is True else batch
            if run_batched(self, ops, epoch):
                return
        for op in ops:
            self.apply(op)

    def apply(self, op: Op) -> None:
        if self.crashed:
            raise RecoveryError("machine has crashed; recover first")
        self.timing.advance_instructions(op.instructions)
        if op.kind is OpKind.PERSIST:
            self.timing.persist_barrier()
            return
        if op.kind is OpKind.READ:
            self._apply_read(op.addr)
        else:
            self._apply_write(op.addr, op.persistent)

    def _apply_read(self, addr: int) -> None:
        event = self.hierarchy.access(addr, is_write=False)
        if event.hit_level is not None:
            self.timing.cache_hit(event.hit_level)
        else:
            self._charged(self.controller.read_data, addr)
        self._service_writebacks(event.writebacks)

    def _apply_write(self, addr: int, persistent: bool) -> None:
        event = self.hierarchy.access(
            addr, is_write=True, persistent=persistent
        )
        if event.hit_level is not None:
            self.timing.cache_hit(event.hit_level)
        if event.fills:
            self._charged(self.controller.read_data, addr)
        for line in event.persists:
            self._charged(self.controller.write_data, line)
        self._service_writebacks(event.writebacks)

    def _service_writebacks(self, lines) -> None:
        for line in lines:
            self._charged(self.controller.write_data, line)

    def _charged(self, operation, addr: int) -> None:
        """Run a controller operation and charge its NVM traffic."""
        if self.timing.device is not None:
            self._charged_via_device(operation, addr)
            return
        reads_before = self.nvm.total_reads()
        writes_before = self.nvm.total_writes()
        operation(addr)
        self.timing.memory_reads(self.nvm.total_reads() - reads_before)
        self.timing.memory_writes(self.nvm.total_writes() - writes_before)

    # ------------------------------------------------------------------
    # bank-level device timing (opt-in, config.device_timing)
    # ------------------------------------------------------------------
    def _charged_via_device(self, operation, addr: int) -> None:
        """Route every NVM access's address through the PCM device."""
        self.nvm.trace = []
        try:
            operation(addr)
            events = self.nvm.trace
        finally:
            self.nvm.trace = None
        for op, region, key in events:
            line = self._physical_line(region, key)
            if op == "r":
                self.timing.device_read(line)
            else:
                self.timing.device_write(line)

    def _build_region_bases(self):
        """Disjoint physical ranges for the four NVM regions."""
        layout = self.controller.layout
        meta_base = layout.num_data_lines
        ra_base = meta_base + layout.total_meta_lines
        layer_offsets = [0]
        for count in layout.index_layers:
            layer_offsets.append(layer_offsets[-1] + count)
        st_base = ra_base + layer_offsets[-1]
        return {
            "meta": meta_base,
            "ra": ra_base,
            "ra_layers": layer_offsets,
            "st": st_base,
        }

    def _physical_line(self, region: str, key) -> int:
        bases = self._region_bases
        if region == "data":
            return key
        if region == "meta":
            return bases["meta"] + key
        if region == "ra":
            layer, index = key
            return bases["ra"] + bases["ra_layers"][layer - 1] + index
        return bases["st"] + key

    # ==================================================================
    # crash / recovery lifecycle
    # ==================================================================
    def crash(self) -> None:
        """Power failure: drop volatile state, keep NVM + registers.

        The cache-tree root register is latched from the current dirty
        cache population — in hardware it is maintained incrementally and
        holds exactly this value at the instant of the crash.
        """
        if self.crashed:
            raise RecoveryError("machine already crashed")
        self.registers.cache_tree_root = (
            self.controller.compute_cache_tree_root()
        )
        self.scheme.on_crash()
        self.pre_crash_dirty = {
            line.addr: tuple(line.payload.counters)
            for line in self.controller.meta_cache.dirty_lines()
        }
        self._dirty_fraction_at_crash = self.controller.dirty_fraction()
        self.stats.event(
            "crash",
            dirty_lines=len(self.pre_crash_dirty),
            dirty_fraction=round(self._dirty_fraction_at_crash, 4),
        )
        self.controller.meta_cache.clear()
        self.hierarchy.drop()
        self.timing.wpq.reset()
        self.crashed = True

    def recover(self, raise_on_failure: bool = False) -> RecoveryReport:
        """Run the scheme's recovery; traffic lands in a fresh Stats."""
        if not self.crashed:
            raise RecoveryError("recover called without a crash")
        recovery_stats = Stats(enabled=self.stats.enabled)
        run_events = self.stats.registry.events
        if run_events.enabled and not recovery_stats.enabled:
            # the flight recorder armed the event log on an otherwise
            # dark machine; keep recording through recovery
            from repro.obs.flight import arm_flight_recorder

            arm_flight_recorder(recovery_stats)
        # keep the run's JSONL trail complete: recovery events stream
        # into the same sink (the run log still owns and closes it)
        run_sink = self.stats.registry.events.sink
        if run_sink is not None:
            recovery_stats.registry.events.attach_sink(run_sink)
        saved = self.nvm.stats
        self.nvm.stats = recovery_stats
        try:
            report = self.scheme.recover(self)
        finally:
            self.nvm.stats = saved
        self.recovery_stats = recovery_stats
        self.crashed = False
        # Re-attach the scheme so its volatile state (Anubis/Phoenix ST
        # slot mirrors, STAR's bitmap manager + ADR residency) restarts
        # from the recovered NVM, exactly as a reboot would rebuild it.
        # Without this, continuing to run on the same Machine leaked
        # shadow-table ways (IndexError after a few crash cycles) and
        # replayed stale ADR bits into the next recovery.
        self.scheme.attach(self.controller)
        if self.sanitizer is not None:
            self.sanitizer.rewire_scheme()
        if raise_on_failure and not report.verified:
            raise VerificationError(
                "recovery verification failed: attack detected"
            )
        return report

    def oracle_check(self, report: RecoveryReport) -> bool:
        """Did recovery restore every pre-crash dirty node exactly?"""
        for line, counters in self.pre_crash_dirty.items():
            if report.restored.get(line) != counters:
                return False
        return True

    # ==================================================================
    # results
    # ==================================================================
    def _adr_hit_ratio(self) -> float:
        """Traffic-free fraction of bitmap-line accesses (Table II).

        Cold misses (first touches, no recovery-area copy to read) cost
        no NVM traffic, so only real ``adr.misses`` count against the
        ratio.
        """
        accesses = self.stats.get("adr.accesses")
        if accesses == 0:
            return 0.0
        return (accesses - self.stats.get("adr.misses")) / accesses

    def result(self, workload: str = "",
               recovery: Optional[RecoveryReport] = None) -> RunResult:
        energy = energy_from_stats(
            self.stats, self.config.nvm, self.timing.now_ns
        )
        extras: dict = {}
        if self.stats.enabled:
            from repro.obs.export import telemetry_snapshot

            telemetry = {"run": telemetry_snapshot(self.stats.registry)}
            if self.recovery_stats is not None:
                telemetry["recovery"] = telemetry_snapshot(
                    self.recovery_stats.registry
                )
            extras["telemetry"] = telemetry
        return RunResult(
            scheme=self.scheme.name,
            workload=workload,
            stats=self.stats.snapshot(),
            instructions=self.timing.instructions,
            cycles=self.timing.cycles,
            ipc=self.timing.ipc,
            energy_read_nj=energy.read_nj,
            energy_write_nj=energy.write_nj,
            energy_static_nj=energy.static_nj,
            dirty_fraction=(
                self._dirty_fraction_at_crash
                if self._dirty_fraction_at_crash is not None
                else self.controller.dirty_fraction()
            ),
            adr_hit_ratio=self._adr_hit_ratio(),
            recovery=recovery,
            extras=extras,
        )
