"""The NVM energy model (Fig. 13).

PCM energy is dominated by its asymmetric cell access costs, so the model
charges every NVM line read/write with the configured per-line energies
and reports the scheme-induced differences. Results are reported
normalized to the write-back baseline, exactly as in the paper, which
makes the absolute per-line constants immaterial to the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NVMTimings
from repro.util.stats import Stats

_READ_COUNTERS = (
    "nvm.data_reads", "nvm.meta_reads", "nvm.ra_reads", "nvm.st_reads",
)
_WRITE_COUNTERS = (
    "nvm.data_writes", "nvm.meta_writes", "nvm.ra_writes", "nvm.st_writes",
)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy attributed to reads, writes and background, in nJ."""

    read_nj: float
    write_nj: float
    static_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        return self.read_nj + self.write_nj + self.static_nj


def energy_from_stats(stats: Stats, nvm: NVMTimings,
                      elapsed_ns: float = 0.0) -> EnergyBreakdown:
    """Compute the NVM energy of a run from its traffic counters.

    ``elapsed_ns`` charges the device's background power for the run's
    duration (1 W == 1 nJ/ns); schemes that also run *longer* therefore
    pay for it, as they do under NVMain's background-energy accounting.
    """
    reads = sum(stats.get(name) for name in _READ_COUNTERS)
    writes = sum(stats.get(name) for name in _WRITE_COUNTERS)
    return EnergyBreakdown(
        read_nj=reads * nvm.read_energy_nj,
        write_nj=writes * nvm.write_energy_nj,
        static_nj=elapsed_ns * nvm.static_power_w,
    )
