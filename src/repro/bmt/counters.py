"""Split counter blocks for Bonsai-Merkle-tree systems (Section II-B).

Pre-SIT secure memories use the split-counter layout: one 64-byte block
holds a 64-bit *major* counter plus 64 7-bit *minor* counters and covers
one 4 KB page (64 data lines). A data line's encryption counter is the
(major, minor) pair. When a minor counter overflows, the major counter
increments, every minor resets, and the whole page must be re-encrypted
under the new major — the burst of writes the paper alludes to when
motivating SIT-style 56-bit counters.

The SIT path of this library (``repro.tree``) does not use these; they
exist for the BMT substrate that the Osiris and Triad-NVM extension
baselines (Section II-E) are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

MINORS_PER_BLOCK = 64
MINOR_BITS = 7
MINOR_LIMIT = (1 << MINOR_BITS) - 1
MAJOR_BITS = 64


@dataclass(frozen=True)
class SplitCounterImage:
    """Immutable 64-byte image of a split counter block."""

    major: int
    minors: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not 0 <= self.major < (1 << MAJOR_BITS):
            raise ValueError("major counter out of range")
        if len(self.minors) != MINORS_PER_BLOCK:
            raise ValueError(
                "a block holds exactly %d minor counters"
                % MINORS_PER_BLOCK
            )
        for minor in self.minors:
            if not 0 <= minor <= MINOR_LIMIT:
                raise ValueError("minor counter out of range")

    @classmethod
    def zero(cls) -> "SplitCounterImage":
        return cls(major=0, minors=(0,) * MINORS_PER_BLOCK)

    def counter_for(self, slot: int) -> Tuple[int, int]:
        """The (major, minor) encryption counter of one covered line."""
        return self.major, self.minors[slot]


class CachedCounterBlock:
    """Mutable cached split counter block."""

    __slots__ = ("major", "minors", "writes_since_persist")

    def __init__(self, image: SplitCounterImage) -> None:
        self.major = image.major
        self.minors: List[int] = list(image.minors)
        self.writes_since_persist = 0

    def snapshot(self) -> SplitCounterImage:
        return SplitCounterImage(self.major, tuple(self.minors))

    def counter_for(self, slot: int) -> Tuple[int, int]:
        return self.major, self.minors[slot]

    def bump(self, slot: int) -> bool:
        """Increment one minor counter; True when the block overflowed
        (major bumped, all minors reset — the page needs re-encryption).
        """
        if not 0 <= slot < MINORS_PER_BLOCK:
            raise ValueError("slot %d out of range" % slot)
        self.writes_since_persist += 1
        if self.minors[slot] >= MINOR_LIMIT:
            self.major += 1
            self.minors = [0] * MINORS_PER_BLOCK
            self.minors[slot] = 1
            return True
        self.minors[slot] += 1
        return False
