"""Osiris and Triad-NVM: the counter-only / BMT recovery baselines.

The paper cannot compare STAR against these directly — "Osiris and
Triad-NVM can't be used to recover the counter blocks and integrity
tree nodes in SIT-based persistent memory" (Section IV-A) — so this
package implements them on the BMT substrate they were designed for,
both to complete the system inventory and to make that incompatibility
demonstrable (see tests/test_bmt.py).

* **Osiris** (MICRO'18): counter blocks are persisted only every Nth
  update (and on minor overflow). Recovery probes each minor counter
  from its stale value upward until the per-line MAC (standing in for
  Osiris' ECC check) verifies, then rebuilds the Merkle tree and
  compares its root against the on-chip register.
* **Triad-NVM** (ISCA'19): counter blocks and the N lowest tree levels
  are written through with every data write (the 2-4x write overhead the
  paper quotes); recovery rebuilds the tree bottom-up from the always-
  fresh counter blocks and compares the root.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bmt.counters import (
    CachedCounterBlock,
    MINOR_LIMIT,
    SplitCounterImage,
)
from repro.bmt.tree import HASH_ARITY, HashNodeImage, rebuild_tree
from repro.schemes.base import RecoveryReport


class BMTScheme:
    """Base: persistence policy + recovery for the BMT controller."""

    name = "bmt-abstract"

    def attach(self, controller) -> None:
        self.controller = controller

    def on_data_write(self, address: int, block_index: int,
                      block: CachedCounterBlock,
                      overflowed: bool) -> None:
        """Called after every data-line write."""

    def recover(self, controller) -> RecoveryReport:
        raise NotImplementedError


class BmtWriteBackScheme(BMTScheme):
    """No counter persistence at all: the unrecoverable baseline."""

    name = "bmt-wb"


class OsirisScheme(BMTScheme):
    """Persist every Nth counter update; recover by probing."""

    name = "osiris"

    def __init__(self, persist_stride: int = 4) -> None:
        if persist_stride < 1:
            raise ValueError("persist stride must be >= 1")
        self.persist_stride = persist_stride

    def on_data_write(self, address: int, block_index: int,
                      block: CachedCounterBlock,
                      overflowed: bool) -> None:
        if overflowed or \
                block.writes_since_persist >= self.persist_stride:
            self.controller.persist_block(block_index)

    def recover(self, controller) -> RecoveryReport:
        nvm = controller.nvm
        geometry = controller.geometry
        reads_before = nvm.total_reads()
        writes_before = nvm.total_writes()
        restored_images: List[SplitCounterImage] = []
        probe_failures = 0
        for index in range(geometry.num_counter_blocks):
            stale = controller._nvm_block(index)
            minors = list(stale.minors)
            for line in geometry.page_lines(index):
                slot = geometry.minor_slot(line)
                image = nvm.read_data(line)
                if image is None:
                    continue
                found = None
                for delta in range(self.persist_stride + 1):
                    candidate = stale.minors[slot] + delta
                    if candidate > MINOR_LIMIT:
                        break  # overflow forces a persist: no wrap
                    if controller._verify_line(
                        line, image, stale.major, candidate
                    ):
                        found = candidate
                        break
                if found is None:
                    probe_failures += 1
                else:
                    minors[slot] = found
            restored_images.append(
                SplitCounterImage(stale.major, tuple(minors))
            )
        _levels, root = rebuild_tree(
            geometry, controller.hasher, restored_images
        )
        verified = (
            probe_failures == 0 and root == controller.persistent_root
        )
        restored: Dict[int, Tuple[int, ...]] = {}
        for index, image in enumerate(restored_images):
            nvm.write_meta(index, image)
            restored[index] = (image.major,) + image.minors
        reads = nvm.total_reads() - reads_before
        writes = nvm.total_writes() - writes_before
        return RecoveryReport(
            scheme=self.name,
            stale_lines=geometry.num_counter_blocks,
            restored_lines=len(restored_images),
            nvm_reads=reads,
            nvm_writes=writes,
            verified=verified,
            recovery_time_ns=(reads + writes) * 100.0,
            restored=restored,
        )


class SuperMemScheme(BMTScheme):
    """SuperMem-style write-through counters with coalescing (§V).

    SuperMem (MICRO'19) keeps counters crash-consistent by writing the
    counter block through with every data write — but observes that a
    block covers a whole page, so bursts of writes to the same page
    produce back-to-back updates of the *same* counter line, which its
    Counter Write Coalescing (CWC) merges while the line still sits in
    the (ADR-protected, hence persistent) write queue.

    The model: a counter-block write is skipped when that block's
    previous write is still within the last ``wpq_window`` NVM writes;
    blocks pending in the queue at a crash are flushed by the ADR
    battery, so recovery still finds every counter fresh.
    """

    name = "supermem"

    def __init__(self, wpq_window: int = 16) -> None:
        if wpq_window < 0:
            raise ValueError("WPQ window must be >= 0")
        self.wpq_window = wpq_window
        self._pending: Dict[int, int] = {}  # block -> age rank
        self._clock = 0

    def on_data_write(self, address: int, block_index: int,
                      block: CachedCounterBlock,
                      overflowed: bool) -> None:
        self._clock += 1
        self._expire()
        if block_index in self._pending:
            # the previous write of this block is still queued: merge
            self._pending[block_index] = self._clock
            self.controller.stats.add("supermem.coalesced_writes")
            return
        self.controller.persist_block(block_index)
        self._pending[block_index] = self._clock

    def _expire(self) -> None:
        horizon = self._clock - self.wpq_window
        for block_index in [
            index for index, rank in self._pending.items()
            if rank <= horizon
        ]:
            del self._pending[block_index]

    def on_crash(self) -> None:
        """ADR flush: coalesced blocks still in the queue are durable."""
        for block_index in list(self._pending):
            block = self.controller._blocks.get(block_index)
            if block is not None:
                self.controller.nvm.flush_meta(
                    block_index, block.snapshot()
                )
        self._pending.clear()

    def recover(self, controller) -> RecoveryReport:
        """Write-through + ADR queue: nothing is ever stale."""
        nvm = controller.nvm
        geometry = controller.geometry
        reads_before = nvm.total_reads()
        restored = {}
        for index in range(geometry.num_counter_blocks):
            image = controller._nvm_block(index)
            restored[index] = (image.major,) + image.minors
        reads = nvm.total_reads() - reads_before
        return RecoveryReport(
            scheme=self.name,
            stale_lines=0,
            restored_lines=len(restored),
            nvm_reads=reads,
            nvm_writes=0,
            verified=True,
            recovery_time_ns=reads * 100.0,
            restored=restored,
        )


class TriadNvmScheme(BMTScheme):
    """Write-through counter blocks + the N lowest tree levels."""

    name = "triad"

    def __init__(self, persisted_levels: int = 1) -> None:
        if persisted_levels < 0:
            raise ValueError("persisted levels must be >= 0")
        self.persisted_levels = persisted_levels

    def on_data_write(self, address: int, block_index: int,
                      block: CachedCounterBlock,
                      overflowed: bool) -> None:
        controller = self.controller
        controller.persist_block(block_index)
        levels = min(self.persisted_levels,
                     controller.geometry.num_hash_levels)
        child_index = block_index
        for level in range(levels):
            node_index = child_index // HASH_ARITY
            image = self._node_image(controller, level, node_index)
            controller.nvm.write_meta(
                controller.geometry.node_meta_index(level, node_index),
                image,
            )
            controller.stats.add("bmt.tree_level_persists")
            child_index = node_index

    def _node_image(self, controller, level: int,
                    node_index: int) -> HashNodeImage:
        """Recompute one hash node from the live child digests."""
        geometry = controller.geometry
        hasher = controller.hasher
        first = node_index * HASH_ARITY
        digests: List[int] = []
        if level == 0:
            last = min(first + HASH_ARITY, geometry.num_counter_blocks)
            for index in range(first, last):
                digests.append(hasher.counter_block_digest(
                    index, controller.block_image(index)
                ))
        else:
            last = min(first + HASH_ARITY,
                       geometry.level_counts[level - 1])
            for index in range(first, last):
                digests.append(hasher.node_digest(
                    level - 1,
                    index,
                    self._node_image(controller, level - 1, index),
                ))
        digests += [0] * (HASH_ARITY - len(digests))
        return HashNodeImage(tuple(digests))

    def recover(self, controller) -> RecoveryReport:
        """Rebuild the whole tree from the write-through counter blocks
        — possible for BMT, impossible for SIT (Section II-E)."""
        nvm = controller.nvm
        geometry = controller.geometry
        reads_before = nvm.total_reads()
        writes_before = nvm.total_writes()
        images: List[SplitCounterImage] = []
        for index in range(geometry.num_counter_blocks):
            images.append(controller._nvm_block(index))
        levels, root = rebuild_tree(geometry, controller.hasher, images)
        verified = root == controller.persistent_root
        for level, nodes in enumerate(levels):
            for node_index, node in enumerate(nodes):
                nvm.write_meta(
                    geometry.node_meta_index(level, node_index), node
                )
        restored = {
            index: (image.major,) + image.minors
            for index, image in enumerate(images)
        }
        reads = nvm.total_reads() - reads_before
        writes = nvm.total_writes() - writes_before
        return RecoveryReport(
            scheme=self.name,
            stale_lines=geometry.num_counter_blocks,
            restored_lines=len(images),
            nvm_reads=reads,
            nvm_writes=writes,
            verified=verified,
            recovery_time_ns=(reads + writes) * 100.0,
            restored=restored,
        )
