"""The Bonsai Merkle Tree (Section II-C, Fig. 2b).

Unlike SIT, a BMT node carries no counters: it is a vector of eight
64-bit hashes, one per child. A leaf-level node hashes eight counter
blocks; higher nodes hash eight child nodes; the root digest lives on
chip. Because every node is a pure function of its children, the whole
tree *can* be reconstructed bottom-up from the counter blocks — which is
exactly why Triad-NVM works for BMT and why neither it nor Osiris can
recover SIT (an SIT MAC needs the parent's counter as an input,
Section II-E).

Geometry: one counter block covers 64 data lines (a page); the hash
tree above the counter blocks is 8-ary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.bmt.counters import MINORS_PER_BLOCK, SplitCounterImage
from repro.crypto.hashing import keyed_hash
from repro.errors import ConfigError

HASH_ARITY = 8


@dataclass(frozen=True)
class HashNodeImage:
    """A 64-byte BMT node: eight 64-bit child digests."""

    hashes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.hashes) != HASH_ARITY:
            raise ValueError(
                "a BMT node holds exactly %d digests" % HASH_ARITY
            )

    @classmethod
    def zero(cls) -> "HashNodeImage":
        return cls(hashes=(0,) * HASH_ARITY)


class BMTGeometry:
    """Shape of a BMT over ``num_data_lines`` of protected memory."""

    def __init__(self, num_data_lines: int) -> None:
        if num_data_lines < 1:
            raise ConfigError("memory must contain at least one line")
        self.num_data_lines = num_data_lines
        self.num_counter_blocks = -(-num_data_lines // MINORS_PER_BLOCK)
        counts: List[int] = []
        level = -(-self.num_counter_blocks // HASH_ARITY)
        counts.append(level)
        while counts[-1] > HASH_ARITY:
            counts.append(-(-counts[-1] // HASH_ARITY))
        self.level_counts: Tuple[int, ...] = tuple(counts)

    @property
    def num_hash_levels(self) -> int:
        return len(self.level_counts)

    def counter_block_for(self, data_line: int) -> int:
        if not 0 <= data_line < self.num_data_lines:
            raise ValueError("data line %d out of range" % data_line)
        return data_line // MINORS_PER_BLOCK

    def minor_slot(self, data_line: int) -> int:
        return data_line % MINORS_PER_BLOCK

    def page_lines(self, block_index: int) -> List[int]:
        """The data lines covered by one counter block."""
        first = block_index * MINORS_PER_BLOCK
        last = min(first + MINORS_PER_BLOCK, self.num_data_lines)
        return list(range(first, last))

    def node_meta_index(self, level: int, index: int) -> int:
        """Flat NVM metadata index of one hash node.

        Counter blocks occupy metadata indices [0, num_counter_blocks);
        hash-node levels follow, bottom level first.
        """
        if not 0 <= level < self.num_hash_levels:
            raise ValueError("hash level %d out of range" % level)
        if not 0 <= index < self.level_counts[level]:
            raise ValueError(
                "index %d out of range for hash level %d"
                % (index, level)
            )
        offset = self.num_counter_blocks
        for below in range(level):
            offset += self.level_counts[below]
        return offset + index


class BMTHasher:
    """Digest functions for counter blocks and tree nodes."""

    def __init__(self, key: bytes) -> None:
        self._key = key

    def counter_block_digest(self, block_index: int,
                             image: SplitCounterImage) -> int:
        return keyed_hash(
            self._key, "bmt-leaf", block_index, image.major,
            *image.minors,
        )

    def node_digest(self, level: int, index: int,
                    image: HashNodeImage) -> int:
        return keyed_hash(
            self._key, "bmt-node", level, index, *image.hashes
        )

    def root_digest(self, top_level_digests: List[int]) -> int:
        padded = list(top_level_digests)
        padded += [0] * (HASH_ARITY - len(padded))
        return keyed_hash(self._key, "bmt-root", *padded)


def rebuild_tree(geometry: BMTGeometry, hasher: BMTHasher,
                 counter_blocks: List[SplitCounterImage]
                 ) -> Tuple[List[List[HashNodeImage]], int]:
    """Reconstruct every BMT level bottom-up from the counter blocks.

    Returns (levels, root digest). This is the operation that SIT makes
    impossible and BMT permits — the crux of Section II-E.
    """
    if len(counter_blocks) != geometry.num_counter_blocks:
        raise ValueError("need every counter block to rebuild the tree")
    digests = [
        hasher.counter_block_digest(index, image)
        for index, image in enumerate(counter_blocks)
    ]
    levels: List[List[HashNodeImage]] = []
    for level, count in enumerate(geometry.level_counts):
        nodes = []
        for index in range(count):
            group = digests[index * HASH_ARITY:(index + 1) * HASH_ARITY]
            group += [0] * (HASH_ARITY - len(group))
            nodes.append(HashNodeImage(tuple(group)))
        levels.append(nodes)
        digests = [
            hasher.node_digest(level, index, node)
            for index, node in enumerate(nodes)
        ]
    return levels, hasher.root_digest(digests)
