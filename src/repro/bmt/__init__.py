"""The Bonsai-Merkle-tree substrate and its recovery baselines.

Everything the Osiris / Triad-NVM extension baselines need: split
counter blocks, the hash tree, a lean secure controller and the two
schemes. Kept separate from the SIT machinery on purpose — the paper's
point is precisely that these schemes do not transfer to SIT.
"""

from repro.bmt.controller import BMTController
from repro.bmt.counters import (
    CachedCounterBlock,
    MINOR_LIMIT,
    MINORS_PER_BLOCK,
    SplitCounterImage,
)
from repro.bmt.schemes import (
    BmtWriteBackScheme,
    BMTScheme,
    OsirisScheme,
    SuperMemScheme,
    TriadNvmScheme,
)
from repro.bmt.tree import (
    BMTGeometry,
    BMTHasher,
    HASH_ARITY,
    HashNodeImage,
    rebuild_tree,
)

__all__ = [
    "BMTController",
    "BMTGeometry",
    "BMTHasher",
    "BMTScheme",
    "BmtWriteBackScheme",
    "CachedCounterBlock",
    "HASH_ARITY",
    "HashNodeImage",
    "MINORS_PER_BLOCK",
    "MINOR_LIMIT",
    "OsirisScheme",
    "SplitCounterImage",
    "SuperMemScheme",
    "TriadNvmScheme",
    "rebuild_tree",
]
