"""A secure memory controller for the BMT substrate.

This is the machine the Osiris / Triad-NVM extension baselines run on:
split-counter encryption with a Bonsai Merkle tree above the counter
blocks. It is deliberately leaner than the SIT controller — the paper
evaluates those schemes only to argue they cannot carry over to SIT
(Section II-E), so what matters here is functional recovery behaviour
and write traffic, not cache-pressure microdynamics:

* counter blocks are cached write-back without capacity pressure,
* persistence policy is entirely the scheme's business (Osiris persists
  every Nth bump and on overflow; Triad-NVM writes through),
* the BMT root register is maintained on chip; at a crash it is latched
  together with the NVM, exactly like the SIT machine's registers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bmt.counters import CachedCounterBlock, SplitCounterImage
from repro.bmt.tree import BMTGeometry, BMTHasher, rebuild_tree
from repro.config import LINE_SIZE
from repro.crypto.hashing import mac54
from repro.crypto.otp import CounterModeEngine
from repro.errors import IntegrityError, RecoveryError
from repro.mem.nvm import NVM
from repro.tree.node import DataLineImage
from repro.util.stats import Stats

ZERO_LINE = bytes(LINE_SIZE)


def _combined(major: int, minor: int) -> int:
    """The encryption counter fed to the OTP for a (major, minor) pair."""
    return (major << 7) | minor


class BMTController:
    """Split-counter CME + Bonsai Merkle tree, scheme-parameterized."""

    def __init__(self, key: bytes, num_data_lines: int, nvm: NVM,
                 scheme, stats: Optional[Stats] = None) -> None:
        self.key = key
        self.nvm = nvm
        self.stats = stats if stats is not None else nvm.stats
        self.geometry = BMTGeometry(num_data_lines)
        self.hasher = BMTHasher(key)
        self.cme = CounterModeEngine(key)
        self._blocks: Dict[int, CachedCounterBlock] = {}
        self.persistent_root: int = self._root_of_blocks({})
        self.crashed = False
        self.scheme = scheme
        scheme.attach(self)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def write_data(self, address: int,
                   plaintext: Optional[bytes] = None) -> None:
        if self.crashed:
            raise RecoveryError("controller has crashed; recover first")
        if plaintext is None:
            plaintext = ZERO_LINE
        block_index = self.geometry.counter_block_for(address)
        slot = self.geometry.minor_slot(address)
        block = self._get_block(block_index)
        overflowed = block.bump(slot)
        if overflowed:
            self.stats.add("bmt.minor_overflows")
            self._reencrypt_page(block_index, block, skip_line=address)
        self._write_line(address, plaintext, block, slot)
        self.scheme.on_data_write(address, block_index, block,
                                  overflowed)

    def read_data(self, address: int) -> bytes:
        if self.crashed:
            raise RecoveryError("controller has crashed; recover first")
        self.stats.add("bmt.data_reads")
        image = self.nvm.read_data(address)
        block_index = self.geometry.counter_block_for(address)
        slot = self.geometry.minor_slot(address)
        block = self._get_block(block_index)
        major, minor = block.counter_for(slot)
        if image is None:
            if (major, minor) != (0, 0):
                raise IntegrityError(
                    "line %d has a live counter but no content" % address
                )
            return ZERO_LINE
        if not self._verify_line(address, image, major, minor):
            raise IntegrityError(
                "MAC mismatch reading data line %d" % address
            )
        return self.cme.decrypt(
            image.ciphertext, address, _combined(major, minor)
        )

    # ------------------------------------------------------------------
    # counter-block and tree state
    # ------------------------------------------------------------------
    def persist_block(self, block_index: int) -> None:
        """Write one counter block through to NVM."""
        block = self._get_block(block_index)
        self.nvm.write_meta(block_index, block.snapshot())
        block.writes_since_persist = 0
        self.stats.add("bmt.block_persists")

    def block_image(self, block_index: int) -> SplitCounterImage:
        """The live (cached-or-NVM) image of one counter block."""
        if block_index in self._blocks:
            return self._blocks[block_index].snapshot()
        return self._nvm_block(block_index)

    def current_root(self) -> int:
        """The BMT root over the *live* counter state (maintained in
        the on-chip register by real hardware)."""
        return self._root_of_blocks(self._blocks)

    # ------------------------------------------------------------------
    # crash lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power failure: latch the root register, drop cached blocks."""
        if self.crashed:
            raise RecoveryError("controller already crashed")
        on_crash = getattr(self.scheme, "on_crash", None)
        if on_crash is not None:
            on_crash()
        self.persistent_root = self.current_root()
        self.pre_crash_blocks = {
            index: block.snapshot()
            for index, block in self._blocks.items()
        }
        self._blocks.clear()
        self.crashed = True

    def recover(self):
        """Delegate to the scheme; returns its RecoveryReport."""
        if not self.crashed:
            raise RecoveryError("recover called without a crash")
        report = self.scheme.recover(self)
        if report.verified:
            self.crashed = False
        return report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _get_block(self, block_index: int) -> CachedCounterBlock:
        block = self._blocks.get(block_index)
        if block is None:
            block = CachedCounterBlock(self._nvm_block(block_index))
            self._blocks[block_index] = block
        return block

    def _nvm_block(self, block_index: int) -> SplitCounterImage:
        image, touched = self.nvm.read_meta(block_index)
        if not touched:
            return SplitCounterImage.zero()
        if not isinstance(image, SplitCounterImage):
            raise IntegrityError(
                "metadata line %d is not a counter block" % block_index
            )
        return image

    def _write_line(self, address: int, plaintext: bytes,
                    block: CachedCounterBlock, slot: int) -> None:
        major, minor = block.counter_for(slot)
        ciphertext = self.cme.encrypt(
            plaintext, address, _combined(major, minor)
        )
        mac = self._line_mac(address, ciphertext, major, minor)
        self.nvm.write_data(
            address, DataLineImage(ciphertext, mac, 0)
        )
        self.stats.add("bmt.data_writes")

    def _reencrypt_page(self, block_index: int,
                        block: CachedCounterBlock,
                        skip_line: int) -> None:
        """A minor overflow re-encrypts the page under the new major."""
        for line in self.geometry.page_lines(block_index):
            if line == skip_line:
                continue
            image = self.nvm.peek_data(line)
            if image is None:
                continue
            # in hardware the old plaintext is read, re-padded and
            # rewritten; the old counter is (major - 1, old minor) but
            # minors were reset, so we recover plaintext via the stored
            # pre-reset pad recorded in the image MAC check path. The
            # simulator reads it back through the old counter tracked
            # by the image's own MAC inputs.
            plaintext = self._decrypt_with_probe(line, image)
            slot = self.geometry.minor_slot(line)
            self._write_line(line, plaintext, block, slot)
            self.stats.add("bmt.reencryption_writes")

    def _decrypt_with_probe(self, address: int,
                            image: DataLineImage) -> bytes:
        """Find the (major, minor) a stored line was encrypted under by
        checking its MAC (used only on the re-encryption path, where the
        cached counters were just reset)."""
        block_index = self.geometry.counter_block_for(address)
        block = self._get_block(block_index)
        slot = self.geometry.minor_slot(address)
        candidates = [(block.major, block.minors[slot])]
        if block.major > 0:
            # exhaustive over the previous major's minor space (128
            # checks worst case; this is the rare overflow path)
            candidates.extend(
                (block.major - 1, minor) for minor in range(128)
            )
        for major, minor in candidates:
            if self._verify_line(address, image, major, minor):
                return self.cme.decrypt(
                    image.ciphertext, address, _combined(major, minor)
                )
        raise IntegrityError(
            "cannot establish the counter of line %d for re-encryption"
            % address
        )

    def _line_mac(self, address: int, ciphertext: bytes,
                  major: int, minor: int) -> int:
        return mac54(self.key, "bmt-data", address, ciphertext,
                     major, minor)

    def _verify_line(self, address: int, image: DataLineImage,
                     major: int, minor: int) -> bool:
        return image.mac == self._line_mac(
            address, image.ciphertext, major, minor
        )

    def _root_of_blocks(self, cached: Dict[int, CachedCounterBlock]
                        ) -> int:
        images: List[SplitCounterImage] = []
        for index in range(self.geometry.num_counter_blocks):
            if index in cached:
                images.append(cached[index].snapshot())
            else:
                image = self.nvm.peek_meta(index)
                images.append(
                    image if isinstance(image, SplitCounterImage)
                    else SplitCounterImage.zero()
                )
        _levels, root = rebuild_tree(self.geometry, self.hasher, images)
        return root
