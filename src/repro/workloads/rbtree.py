"""The ``rbtree`` micro-benchmark.

A real red-black tree (CLRS insertion with recolouring and rotations),
one node per persistent line. An insert reads the search path, writes the
new node and every node touched by the fix-up (recolourings ripple
upward; rotations rewrite three pointer sets), then persists. Compared
with the B-tree, writes are more scattered and the per-insert write count
is more variable — matching the workload's character in the paper.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.workloads.base import Workload
from repro.workloads.trace import Op

RED = True
BLACK = False


class _Node:
    __slots__ = ("line", "key", "color", "left", "right", "parent")

    def __init__(self, line: int, key: int) -> None:
        self.line = line
        self.key = key
        self.color = RED
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.parent: Optional["_Node"] = None


class RBTreeWorkload(Workload):
    """Random-key inserts (plus lookups) into a red-black tree."""

    name = "rbtree"

    def __init__(self, num_data_lines: int, operations: int = 2000,
                 seed: int = 42, lookup_fraction: float = 0.3,
                 key_space: int = 1 << 30) -> None:
        super().__init__(num_data_lines, operations, seed)
        self.lookup_fraction = lookup_fraction
        self.key_space = key_space
        self.root: Optional[_Node] = None
        self.size = 0
        self._emitted: List[Op] = []

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------
    def _emit_read(self, node: _Node) -> None:
        self._emitted.append(self._read(node.line))

    def _emit_write(self, node: _Node) -> None:
        self._emitted.append(self._write(node.line))

    # ------------------------------------------------------------------
    # rotations (each rewrites the lines whose pointers change)
    # ------------------------------------------------------------------
    def _rotate_left(self, node: _Node) -> None:
        pivot = node.right
        assert pivot is not None
        node.right = pivot.left
        if pivot.left is not None:
            pivot.left.parent = node
            self._emit_write(pivot.left)
        pivot.parent = node.parent
        if node.parent is None:
            self.root = pivot
        elif node is node.parent.left:
            node.parent.left = pivot
            self._emit_write(node.parent)
        else:
            node.parent.right = pivot
            self._emit_write(node.parent)
        pivot.left = node
        node.parent = pivot
        self._emit_write(node)
        self._emit_write(pivot)

    def _rotate_right(self, node: _Node) -> None:
        pivot = node.left
        assert pivot is not None
        node.left = pivot.right
        if pivot.right is not None:
            pivot.right.parent = node
            self._emit_write(pivot.right)
        pivot.parent = node.parent
        if node.parent is None:
            self.root = pivot
        elif node is node.parent.right:
            node.parent.right = pivot
            self._emit_write(node.parent)
        else:
            node.parent.left = pivot
            self._emit_write(node.parent)
        pivot.right = node
        node.parent = pivot
        self._emit_write(node)
        self._emit_write(pivot)

    # ------------------------------------------------------------------
    # insert + fix-up
    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        node = _Node(self.heap.alloc(1), key)
        parent: Optional[_Node] = None
        cursor = self.root
        while cursor is not None:
            self._emit_read(cursor)
            parent = cursor
            cursor = cursor.left if key < cursor.key else cursor.right
        node.parent = parent
        if parent is None:
            self.root = node
        elif key < parent.key:
            parent.left = node
            self._emit_write(parent)
        else:
            parent.right = node
            self._emit_write(parent)
        self._emit_write(node)
        self._fixup(node)
        self.size += 1
        self._emitted.append(self._persist())

    def _fixup(self, node: _Node) -> None:
        while node.parent is not None and node.parent.color is RED:
            parent = node.parent
            grand = parent.parent
            assert grand is not None
            if parent is grand.left:
                uncle = grand.right
                if uncle is not None and uncle.color is RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    self._emit_write(parent)
                    self._emit_write(uncle)
                    self._emit_write(grand)
                    node = grand
                else:
                    if node is parent.right:
                        node = parent
                        self._rotate_left(node)
                        parent = node.parent
                        assert parent is not None
                    parent.color = BLACK
                    grand.color = RED
                    self._emit_write(parent)
                    self._emit_write(grand)
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle is not None and uncle.color is RED:
                    parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    self._emit_write(parent)
                    self._emit_write(uncle)
                    self._emit_write(grand)
                    node = grand
                else:
                    if node is parent.left:
                        node = parent
                        self._rotate_right(node)
                        parent = node.parent
                        assert parent is not None
                    parent.color = BLACK
                    grand.color = RED
                    self._emit_write(parent)
                    self._emit_write(grand)
                    self._rotate_left(grand)
        assert self.root is not None
        if self.root.color is RED:
            self.root.color = BLACK
            self._emit_write(self.root)

    def lookup(self, key: int) -> bool:
        cursor = self.root
        while cursor is not None:
            self._emit_read(cursor)
            if key == cursor.key:
                return True
            cursor = cursor.left if key < cursor.key else cursor.right
        return False

    # ------------------------------------------------------------------
    # invariant checking (used by the tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        assert self.root is None or self.root.color is BLACK

        def walk(node: Optional[_Node], lower: Optional[int],
                 upper: Optional[int]) -> int:
            if node is None:
                return 1
            if lower is not None:
                assert node.key > lower
            if upper is not None:
                assert node.key < upper
            if node.color is RED:
                for child in (node.left, node.right):
                    assert child is None or child.color is BLACK, \
                        "red node with red child"
            left_black = walk(node.left, lower, node.key)
            right_black = walk(node.right, node.key, upper)
            assert left_black == right_black, "black-height mismatch"
            return left_black + (1 if node.color is BLACK else 0)

        walk(self.root, None, None)

    # ------------------------------------------------------------------
    # the trace
    # ------------------------------------------------------------------
    def ops(self) -> Iterator[Op]:
        inserted: List[int] = []
        seen = set()
        for _ in range(self.operations):
            self._emitted = []
            if inserted and self.rng.random() < self.lookup_fraction:
                self.lookup(self.rng.choice(inserted))
            else:
                key = self.rng.randrange(self.key_space)
                while key in seen:
                    key = self.rng.randrange(self.key_space)
                seen.add(key)
                inserted.append(key)
                self.insert(key)
            yield from self._emitted
        self._emitted = []
