"""The ``btree`` micro-benchmark.

A real B-tree (CLRS preemptive-split formulation, minimum degree 4, so a
node's seven keys fit one 64-byte line) laid out in persistent lines.
Inserting a key reads every node on the root-to-leaf path, splits full
nodes on the way down (allocating and writing new lines) and persists at
the end of the insert — the pattern persistent B-tree implementations
exhibit: read-mostly traversals punctuated by bursts of writes at splits.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.workloads.base import Workload
from repro.workloads.trace import Op

MIN_DEGREE = 4
MAX_KEYS = 2 * MIN_DEGREE - 1


class _Node:
    """An in-simulation B-tree node pinned to one persistent line."""

    __slots__ = ("line", "leaf", "keys", "children")

    def __init__(self, line: int, leaf: bool) -> None:
        self.line = line
        self.leaf = leaf
        self.keys: List[int] = []
        self.children: List["_Node"] = []


class BTreeWorkload(Workload):
    """Random-key inserts (plus some lookups) into a persistent B-tree."""

    name = "btree"

    def __init__(self, num_data_lines: int, operations: int = 2000,
                 seed: int = 42, lookup_fraction: float = 0.3,
                 key_space: int = 1 << 30) -> None:
        super().__init__(num_data_lines, operations, seed)
        self.lookup_fraction = lookup_fraction
        self.key_space = key_space
        self.root = _Node(self.heap.alloc(1), leaf=True)
        self.size = 0
        self._emitted: List[Op] = []

    # ------------------------------------------------------------------
    # structural operations, emitting trace records as they touch lines
    # ------------------------------------------------------------------
    def _emit_read(self, node: _Node) -> None:
        self._emitted.append(self._read(node.line))

    def _emit_write(self, node: _Node) -> None:
        self._emitted.append(self._write(node.line))

    def _split_child(self, parent: _Node, index: int) -> None:
        full = parent.children[index]
        sibling = _Node(self.heap.alloc(1), leaf=full.leaf)
        mid = full.keys[MIN_DEGREE - 1]
        sibling.keys = full.keys[MIN_DEGREE:]
        full.keys = full.keys[: MIN_DEGREE - 1]
        if not full.leaf:
            sibling.children = full.children[MIN_DEGREE:]
            full.children = full.children[:MIN_DEGREE]
        parent.children.insert(index + 1, sibling)
        parent.keys.insert(index, mid)
        self._emit_write(full)
        self._emit_write(sibling)
        self._emit_write(parent)

    def insert(self, key: int) -> None:
        root = self.root
        if len(root.keys) == MAX_KEYS:
            new_root = _Node(self.heap.alloc(1), leaf=False)
            new_root.children.append(root)
            self.root = new_root
            self._emit_read(root)
            self._split_child(new_root, 0)
        self._insert_nonfull(self.root, key)
        self.size += 1
        self._emitted.append(self._persist())

    def _insert_nonfull(self, node: _Node, key: int) -> None:
        self._emit_read(node)
        if node.leaf:
            position = self._key_position(node, key)
            node.keys.insert(position, key)
            self._emit_write(node)
            return
        index = self._key_position(node, key)
        child = node.children[index]
        if len(child.keys) == MAX_KEYS:
            self._emit_read(child)
            self._split_child(node, index)
            if key > node.keys[index]:
                index += 1
        self._insert_nonfull(node.children[index], key)

    def lookup(self, key: int) -> bool:
        node: Optional[_Node] = self.root
        while node is not None:
            self._emit_read(node)
            index = self._key_position(node, key)
            if index < len(node.keys) and node.keys[index] == key:
                return True
            node = None if node.leaf else node.children[index]
        return False

    @staticmethod
    def _key_position(node: _Node, key: int) -> int:
        position = 0
        while position < len(node.keys) and key > node.keys[position]:
            position += 1
        return position

    # ------------------------------------------------------------------
    # invariant checking (used by the tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        def walk(node: _Node, lower: Optional[int],
                 upper: Optional[int], depth: int) -> int:
            assert len(node.keys) <= MAX_KEYS
            if node is not self.root:
                assert len(node.keys) >= MIN_DEGREE - 1
            assert node.keys == sorted(node.keys)
            if lower is not None:
                assert all(key > lower for key in node.keys)
            if upper is not None:
                assert all(key < upper for key in node.keys)
            if node.leaf:
                assert not node.children
                return depth
            assert len(node.children) == len(node.keys) + 1
            depths = set()
            bounds = [lower] + node.keys + [upper]
            for index, child in enumerate(node.children):
                depths.add(
                    walk(child, bounds[index], bounds[index + 1], depth + 1)
                )
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop()

        walk(self.root, None, None, 0)

    # ------------------------------------------------------------------
    # the trace
    # ------------------------------------------------------------------
    def ops(self) -> Iterator[Op]:
        inserted: List[int] = []
        for _ in range(self.operations):
            self._emitted = []
            if inserted and self.rng.random() < self.lookup_fraction:
                self.lookup(self.rng.choice(inserted))
            else:
                key = self.rng.randrange(self.key_space)
                inserted.append(key)
                self.insert(key)
            yield from self._emitted
        self._emitted = []
