"""The ``hash`` micro-benchmark.

A persistent open-addressing (linear probing) hash table: one line per
slot plus a count line. Inserts hash a fresh key, probe until a free slot
is found (reads), then write the slot and the count line and persist.
Updates rehash an existing key and rewrite its slot. The uniformly random
slot addresses give this workload the *lowest* spatial locality and the
most writes per operation — in the paper it shows the largest IPC
degradation (Section IV-C).
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.workloads.base import Workload
from repro.workloads.trace import Op


class HashTableWorkload(Workload):
    """Insert/update against a persistent linear-probing hash table."""

    name = "hash"

    def __init__(self, num_data_lines: int, operations: int = 2000,
                 seed: int = 42, table_lines: int = 0,
                 update_fraction: float = 0.3) -> None:
        super().__init__(num_data_lines, operations, seed)
        if table_lines <= 0:
            table_lines = max(256, min(num_data_lines // 2, 16384))
        self.table_lines = table_lines
        self.update_fraction = update_fraction
        self.count_line = self.heap.alloc(1)
        self.table_base = self.heap.alloc(table_lines)
        self._slots: Dict[int, int] = {}  # slot index -> key
        self._key_slot: Dict[int, int] = {}  # key -> slot index
        self._next_key = 0

    def _hash(self, key: int) -> int:
        # a deterministic mix; Python's hash(int) is the identity,
        # which would fake perfect locality
        value = (key * 2654435761) & 0xFFFFFFFF
        return value % self.table_lines

    def _insert(self, key: int) -> Iterator[Op]:
        slot = self._hash(key)
        probes = 0
        while slot in self._slots and probes < self.table_lines:
            yield self._read(self.table_base + slot)
            slot = (slot + 1) % self.table_lines
            probes += 1
        self._slots[slot] = key
        self._key_slot[key] = slot
        yield self._write(self.table_base + slot)
        yield self._write(self.count_line)
        yield self._persist()

    def _update(self, key: int) -> Iterator[Op]:
        slot = self._hash(key)
        while self._slots.get(slot) != key:
            yield self._read(self.table_base + slot)
            slot = (slot + 1) % self.table_lines
        yield self._write(self.table_base + slot)
        yield self._persist()

    def ops(self) -> Iterator[Op]:
        max_load = int(self.table_lines * 0.7)
        for _ in range(self.operations):
            do_update = (
                self._key_slot
                and (self.rng.random() < self.update_fraction
                     or len(self._slots) >= max_load)
            )
            if do_update:
                key = self.rng.choice(list(self._key_slot))
                yield from self._update(key)
            else:
                key = self._next_key
                self._next_key += 1
                yield from self._insert(key)

    def load_factor(self) -> float:
        return len(self._slots) / self.table_lines
