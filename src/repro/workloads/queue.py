"""The ``queue`` micro-benchmark.

A persistent circular queue: a header line holds head/tail indices and a
ring of data lines holds the payloads. Enqueues write the tail slot and
the header; dequeues read the head slot and write the header; each
operation commits with a persist barrier. The hot header line gives this
workload the highest temporal locality of the suite.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import Workload
from repro.workloads.trace import Op


class QueueWorkload(Workload):
    """Enqueue/dequeue against a persistent ring buffer."""

    name = "queue"

    def __init__(self, num_data_lines: int, operations: int = 2000,
                 seed: int = 42, ring_lines: int = 0,
                 enqueue_fraction: float = 0.6) -> None:
        super().__init__(num_data_lines, operations, seed)
        if ring_lines <= 0:
            ring_lines = max(64, min(num_data_lines // 4, 4096))
        self.header = self.heap.alloc(1)
        self.ring_base = self.heap.alloc(ring_lines)
        self.ring_lines = ring_lines
        self.enqueue_fraction = enqueue_fraction
        self._head = 0
        self._tail = 0
        self._size = 0

    def ops(self) -> Iterator[Op]:
        for _ in range(self.operations):
            enqueue = (
                self._size == 0
                or (self._size < self.ring_lines
                    and self.rng.random() < self.enqueue_fraction)
            )
            if enqueue:
                slot = self.ring_base + self._tail
                self._tail = (self._tail + 1) % self.ring_lines
                self._size += 1
                yield self._read(self.header)
                yield self._write(slot)
                yield self._write(self.header)
                yield self._persist()
            else:
                slot = self.ring_base + self._head
                self._head = (self._head + 1) % self.ring_lines
                self._size -= 1
                yield self._read(self.header)
                yield self._read(slot)
                yield self._write(self.header)
                yield self._persist()
