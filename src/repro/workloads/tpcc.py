"""The ``tpcc`` macro-benchmark (WHISPER's TPC-C style transaction mix).

A scaled-down TPC-C schema laid out in persistent line arrays (warehouse,
district, customer, stock, item) plus append-only order/order-line/log
regions. Transactions follow the TPC-C mix the WHISPER suite uses:

* **new-order** (~60%): read warehouse/district/customer, read 5-15
  item+stock pairs, update district next-order-id and each stock line,
  append order and order lines, write a commit log record, persist.
* **payment** (~40%): read/update warehouse, district and customer
  balances, append a history record and a log record, persist.

Non-uniform access (customers and items sampled with TPC-C's NURand-like
skew) keeps some lines hot while the appends sweep fresh lines — the mix
of localities the paper's macro results reflect.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import Workload
from repro.workloads.trace import Op


class TpccWorkload(Workload):
    """A new-order/payment transaction mix over a TPC-C-like schema."""

    name = "tpcc"

    def __init__(self, num_data_lines: int, operations: int = 500,
                 seed: int = 42, warehouses: int = 2,
                 new_order_fraction: float = 0.6) -> None:
        super().__init__(num_data_lines, operations, seed)
        self.new_order_fraction = new_order_fraction
        scale = max(1, warehouses)
        self.warehouse = self.heap.alloc(scale)
        self.warehouses = scale
        self.district = self.heap.alloc(scale * 10)
        self.customers_per_district = max(
            32, min(512, num_data_lines // (scale * 10 * 8))
        )
        self.customer = self.heap.alloc(
            scale * 10 * self.customers_per_district
        )
        self.items = max(128, min(2048, num_data_lines // 16))
        self.item = self.heap.alloc(self.items)
        self.stock = self.heap.alloc(self.items * scale)
        order_lines = max(256, min(self.heap.free - 256, 8192))
        self.order_region = self.heap.alloc(order_lines)
        self.order_lines = order_lines
        self._order_cursor = 0
        log_lines = max(64, min(self.heap.free, 2048))
        self.log_region = self.heap.alloc(log_lines)
        self.log_lines = log_lines
        self._log_cursor = 0

    # ------------------------------------------------------------------
    # skewed pickers (TPC-C uses NURand; a squared-uniform skew is a
    # faithful stand-in for the locality it creates)
    # ------------------------------------------------------------------
    def _skewed(self, n: int) -> int:
        return int(self.rng.random() ** 2 * n)

    def _append_order(self) -> int:
        line = self.order_region + self._order_cursor
        self._order_cursor = (self._order_cursor + 1) % self.order_lines
        return line

    def _append_log(self) -> int:
        line = self.log_region + self._log_cursor
        self._log_cursor = (self._log_cursor + 1) % self.log_lines
        return line

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def _new_order(self) -> Iterator[Op]:
        warehouse = self.rng.randrange(self.warehouses)
        district = warehouse * 10 + self.rng.randrange(10)
        customer = (
            district * self.customers_per_district
            + self._skewed(self.customers_per_district)
        )
        yield self._read(self.warehouse + warehouse)
        yield self._read(self.district + district)
        yield self._read(self.customer + customer)
        yield self._write(self.district + district)  # next_o_id
        yield self._write(self._append_order())      # order header
        for _ in range(self.rng.randint(5, 15)):
            item = self._skewed(self.items)
            stock = warehouse * self.items + item
            yield self._read(self.item + item)
            yield self._read(self.stock + stock)
            yield self._write(self.stock + stock)
            yield self._write(self._append_order())  # order line
        yield self._write(self._append_log())        # commit record
        yield self._persist()

    def _payment(self) -> Iterator[Op]:
        warehouse = self.rng.randrange(self.warehouses)
        district = warehouse * 10 + self.rng.randrange(10)
        customer = (
            district * self.customers_per_district
            + self._skewed(self.customers_per_district)
        )
        yield self._read(self.warehouse + warehouse)
        yield self._write(self.warehouse + warehouse)
        yield self._read(self.district + district)
        yield self._write(self.district + district)
        yield self._read(self.customer + customer)
        yield self._write(self.customer + customer)
        yield self._write(self._append_order())      # history record
        yield self._write(self._append_log())
        yield self._persist()

    def ops(self) -> Iterator[Op]:
        for _ in range(self.operations):
            if self.rng.random() < self.new_order_fraction:
                yield from self._new_order()
            else:
                yield from self._payment()
