"""The ``ycsb`` macro-benchmark (WHISPER's YCSB-style key-value store).

A table of single-line records accessed under a Zipfian popularity
distribution (theta = 0.99, the YCSB default) with an update-heavy mix:
50% reads, 50% read-modify-write updates, each update committing through
a persist barrier plus an append-only log write — the WHISPER echo/N-store
pattern. The skew concentrates traffic on hot counter blocks, giving the
high ADR bitmap-line hit ratios the paper reports for macro workloads.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List

from repro.workloads.base import Workload
from repro.workloads.trace import Op


class ZipfianSampler:
    """Inverse-CDF Zipfian sampling over ranks [0, n)."""

    def __init__(self, n: int, theta: float = 0.99) -> None:
        if n < 1:
            raise ValueError("need at least one item")
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self, rng) -> int:
        return bisect.bisect_left(self._cumulative, rng.random())


class YcsbWorkload(Workload):
    """Zipfian key-value reads/updates with a persistent log."""

    name = "ycsb"

    def __init__(self, num_data_lines: int, operations: int = 2000,
                 seed: int = 42, records: int = 0,
                 update_fraction: float = 0.5,
                 zipf_theta: float = 0.99) -> None:
        super().__init__(num_data_lines, operations, seed)
        if records <= 0:
            records = max(256, min(num_data_lines // 3, 8192))
        self.records = records
        self.update_fraction = update_fraction
        self.record_base = self.heap.alloc(records)
        log_lines = max(64, min(self.heap.free // 2, 4096))
        self.log_base = self.heap.alloc(log_lines)
        self.log_lines = log_lines
        self._log_cursor = 0
        self._zipf = ZipfianSampler(records, zipf_theta)
        # shuffle ranks over the table so hot records are scattered
        self._placement = list(range(records))
        self.rng.shuffle(self._placement)

    def _record_line(self) -> int:
        rank = self._zipf.sample(self.rng)
        return self.record_base + self._placement[rank]

    def _log_line(self) -> int:
        line = self.log_base + self._log_cursor
        self._log_cursor = (self._log_cursor + 1) % self.log_lines
        return line

    def ops(self) -> Iterator[Op]:
        for _ in range(self.operations):
            line = self._record_line()
            if self.rng.random() < self.update_fraction:
                yield self._read(line)
                yield self._write(self._log_line())
                yield self._write(line)
                yield self._persist()
            else:
                yield self._read(line)
