"""Workloads: persistent micro-benchmarks + WHISPER-style macros."""

from repro.workloads.alloc import PersistentHeap
from repro.workloads.array import ArrayWorkload
from repro.workloads.base import Workload
from repro.workloads.btree import BTreeWorkload
from repro.workloads.hashtable import HashTableWorkload
from repro.workloads.queue import QueueWorkload
from repro.workloads.rbtree import RBTreeWorkload
from repro.workloads.capture import load_trace, save_trace
from repro.workloads.registry import (
    ALL_WORKLOADS,
    MACRO_WORKLOADS,
    MICRO_WORKLOADS,
    WORKLOAD_CLASSES,
    make_threaded_trace,
    make_workload,
)
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.trace import (
    Op,
    OpKind,
    TraceBuilder,
    count_kinds,
    interleave_traces,
)
from repro.workloads.ycsb import YcsbWorkload, ZipfianSampler

__all__ = [
    "ALL_WORKLOADS",
    "ArrayWorkload",
    "BTreeWorkload",
    "HashTableWorkload",
    "MACRO_WORKLOADS",
    "MICRO_WORKLOADS",
    "Op",
    "OpKind",
    "PersistentHeap",
    "QueueWorkload",
    "RBTreeWorkload",
    "TpccWorkload",
    "TraceBuilder",
    "WORKLOAD_CLASSES",
    "Workload",
    "YcsbWorkload",
    "ZipfianSampler",
    "count_kinds",
    "interleave_traces",
    "load_trace",
    "make_threaded_trace",
    "make_workload",
    "save_trace",
]
