"""Trace capture and replay.

Workloads are deterministic generators, but research workflows often
want the *same byte-identical trace* across machines, schemes and
library versions — e.g. to archive the exact input of a published
number. This module serializes traces to a line-oriented text format
(one op per line, ``#`` comments allowed)::

    # kind addr instructions [persistent]
    R 4096 120
    W 4097 85 p
    W 4098 85 s
    P 0 10

``R``/``W``/``P`` are read/write/persist; writes carry ``p``
(persistent, clwb-style) or ``s`` (scratch). Files ending in ``.gz``
are transparently compressed.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.workloads.trace import Op, OpKind

_KIND_TO_CODE = {
    OpKind.READ: "R",
    OpKind.WRITE: "W",
    OpKind.PERSIST: "P",
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}

PathLike = Union[str, Path]


def _open(path: PathLike, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def format_op(op: Op) -> str:
    """One op as one trace-file line."""
    code = _KIND_TO_CODE[op.kind]
    line = "%s %d %d" % (code, op.addr, op.instructions)
    if op.kind is OpKind.WRITE:
        line += " p" if op.persistent else " s"
    return line


def parse_op(line: str) -> Op:
    """Inverse of :func:`format_op`."""
    parts = line.split()
    if not 3 <= len(parts) <= 4:
        raise ValueError("malformed trace line: %r" % line)
    code = parts[0].upper()
    if code not in _CODE_TO_KIND:
        raise ValueError("unknown op code %r" % parts[0])
    kind = _CODE_TO_KIND[code]
    addr = int(parts[1])
    instructions = int(parts[2])
    persistent = True
    if kind is OpKind.WRITE:
        if len(parts) == 4:
            flag = parts[3].lower()
            if flag not in ("p", "s"):
                raise ValueError("bad write flag %r" % parts[3])
            persistent = flag == "p"
    elif len(parts) == 4:
        raise ValueError("only writes carry a persistence flag")
    return Op(kind, addr, instructions, persistent)


def save_trace(ops: Iterable[Op], path: PathLike,
               header: str = "") -> int:
    """Write a trace file; returns the number of ops written."""
    count = 0
    with _open(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write("# %s\n" % line)
        for op in ops:
            handle.write(format_op(op) + "\n")
            count += 1
    return count


def load_trace(path: PathLike) -> Iterator[Op]:
    """Stream ops back from a trace file."""
    with _open(path, "r") as handle:
        yield from read_trace(handle)


def read_trace(handle: io.TextIOBase) -> Iterator[Op]:
    """Parse ops from an open text stream."""
    for raw in handle:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_op(line)
