"""Trace capture and replay.

Workloads are deterministic generators, but research workflows often
want the *same byte-identical trace* across machines, schemes and
library versions — e.g. to archive the exact input of a published
number. This module serializes traces to a line-oriented text format
(one op per line, ``#`` comments allowed)::

    # kind addr instructions [persistent]
    R 4096 120
    W 4097 85 p
    W 4098 85 s
    P 0 10

``R``/``W``/``P`` are read/write/persist; writes carry ``p``
(persistent, clwb-style) or ``s`` (scratch). Files ending in ``.gz``
are transparently compressed.

Malformed input raises :class:`~repro.errors.TraceFormatError` (a
``ValueError`` subclass) carrying the line number and source file, so
replay tools — and the fuzzer's corpus loader — can report exactly
which trace line is broken instead of surfacing a bare unpacking error.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.errors import TraceFormatError
from repro.workloads.trace import Op, OpKind

_KIND_TO_CODE = {
    OpKind.READ: "R",
    OpKind.WRITE: "W",
    OpKind.PERSIST: "P",
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}

PathLike = Union[str, Path]


def _open(path: PathLike, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def format_op(op: Op) -> str:
    """One op as one trace-file line."""
    code = _KIND_TO_CODE[op.kind]
    line = "%s %d %d" % (code, op.addr, op.instructions)
    if op.kind is OpKind.WRITE:
        line += " p" if op.persistent else " s"
    return line


def _int_field(text: str, what: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise TraceFormatError(
            "%s is not an integer: %r" % (what, text)
        ) from None
    if value < 0:
        raise TraceFormatError("%s must be non-negative: %r" % (what, text))
    return value


def parse_op(line: str) -> Op:
    """Inverse of :func:`format_op`; raises :class:`TraceFormatError`."""
    parts = line.split()
    if not 3 <= len(parts) <= 4:
        raise TraceFormatError("malformed trace line: %r" % line)
    code = parts[0].upper()
    if code not in _CODE_TO_KIND:
        raise TraceFormatError("unknown op code %r" % parts[0])
    kind = _CODE_TO_KIND[code]
    addr = _int_field(parts[1], "address")
    instructions = _int_field(parts[2], "instruction gap")
    persistent = True
    if kind is OpKind.WRITE:
        if len(parts) == 4:
            flag = parts[3].lower()
            if flag not in ("p", "s"):
                raise TraceFormatError("bad write flag %r" % parts[3])
            persistent = flag == "p"
    elif len(parts) == 4:
        raise TraceFormatError("only writes carry a persistence flag")
    return Op(kind, addr, instructions, persistent)


def save_trace(ops: Iterable[Op], path: PathLike,
               header: str = "") -> int:
    """Write a trace file; returns the number of ops written."""
    count = 0
    with _open(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write("# %s\n" % line)
        for op in ops:
            handle.write(format_op(op) + "\n")
            count += 1
    return count


def load_trace(path: PathLike) -> Iterator[Op]:
    """Stream ops back from a trace file."""
    with _open(path, "r") as handle:
        yield from read_trace(handle, source=str(path))


def read_trace(handle: io.TextIOBase, source: str = "") -> Iterator[Op]:
    """Parse ops from an open text stream.

    Parse failures re-raise as :class:`TraceFormatError` annotated with
    the 1-based line number (and ``source``, when given).
    """
    for number, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            yield parse_op(line)
        except TraceFormatError as exc:
            raise TraceFormatError(
                str(exc), line_number=number, source=source
            ) from None
