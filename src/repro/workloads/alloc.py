"""A bump allocator over the simulated persistent address space.

Workloads lay their data structures out in line-granular regions of the
NVM data space, exactly like a persistent heap would. Allocation is
deliberately simple (regions are never freed during a run) — what matters
for the evaluation is the *reference pattern* over the allocated lines.
"""

from __future__ import annotations

from repro.errors import AllocationError


class PersistentHeap:
    """Line-granular bump allocation over ``[0, num_lines)``."""

    def __init__(self, num_lines: int, base: int = 0) -> None:
        if num_lines < 1:
            raise ValueError("heap must contain at least one line")
        if base < 0:
            raise ValueError("heap base must be non-negative")
        self.base = base
        self.limit = base + num_lines
        self._next = base

    def alloc(self, lines: int) -> int:
        """Reserve ``lines`` consecutive lines; returns the first."""
        if lines < 1:
            raise ValueError("allocation must cover at least one line")
        if self._next + lines > self.limit:
            raise AllocationError(
                "persistent heap exhausted: %d lines requested, %d free"
                % (lines, self.limit - self._next)
            )
        start = self._next
        self._next += lines
        return start

    @property
    def used(self) -> int:
        return self._next - self.base

    @property
    def free(self) -> int:
        return self.limit - self._next
