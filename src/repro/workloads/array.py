"""The ``array`` micro-benchmark.

A persistent array updated in place: a mix of sequential sweeps (high
spatial locality — neighbouring lines share a counter block) and random
updates. Every update is a read-modify-write followed by a persist
barrier, the standard persistent-array pattern of the micro-benchmark
suites the paper cites.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import Workload
from repro.workloads.trace import Op


class ArrayWorkload(Workload):
    """Read-modify-write-persist over a persistent array."""

    name = "array"

    def __init__(self, num_data_lines: int, operations: int = 2000,
                 seed: int = 42, array_lines: int = 0,
                 sequential_fraction: float = 0.5) -> None:
        super().__init__(num_data_lines, operations, seed)
        if not 0.0 <= sequential_fraction <= 1.0:
            raise ValueError("sequential fraction must be in [0, 1]")
        if array_lines <= 0:
            array_lines = max(64, min(num_data_lines // 2, 8192))
        self.array_lines = array_lines
        self.sequential_fraction = sequential_fraction
        self.base = self.heap.alloc(array_lines)
        self._cursor = 0

    def _next_index(self) -> int:
        if self.rng.random() < self.sequential_fraction:
            index = self._cursor
            self._cursor = (self._cursor + 1) % self.array_lines
            return index
        return self.rng.randrange(self.array_lines)

    def ops(self) -> Iterator[Op]:
        for _ in range(self.operations):
            line = self.base + self._next_index()
            yield self._read(line)
            yield self._write(line)
            yield self._persist()
