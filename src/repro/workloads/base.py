"""Workload base class.

A workload owns a deterministic RNG, a persistent heap carved out of the
simulated data space, and a target operation count. ``ops()`` yields the
trace; implementations model *real* data structures (the B-tree really
splits, the red-black tree really rotates) so the reference stream has
the locality the paper's micro-benchmarks exhibit.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterator

from repro.workloads.alloc import PersistentHeap
from repro.workloads.trace import Op, OpKind


class Workload(ABC):
    """One benchmark producing a line-granular reference trace."""

    name: str = "abstract"

    def __init__(self, num_data_lines: int, operations: int = 2000,
                 seed: int = 42) -> None:
        if operations < 1:
            raise ValueError("need at least one operation")
        self.num_data_lines = num_data_lines
        self.operations = operations
        self.seed = seed
        # string seeding is deterministic across processes (SHA-512
        # based), unlike hashing a tuple that contains a str
        self.rng = random.Random("%s:%d" % (self.name, seed))
        self.heap = PersistentHeap(num_data_lines)

    @abstractmethod
    def ops(self) -> Iterator[Op]:
        """Yield the trace records of this workload."""

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------
    def _gap(self, low: int = 600, high: int = 3000) -> int:
        """A plausible instruction gap between memory references.

        The paper's benchmarks retire on the order of a thousand
        instructions per off-chip reference; the gap keeps the write
        queue below saturation for the baseline so scheme-induced extra
        writes show up as the moderate IPC losses of Fig. 12 rather than
        as bandwidth collapse.
        """
        return self.rng.randint(low, high)

    def _read(self, addr: int) -> Op:
        return Op(OpKind.READ, addr, self._gap())

    def _write(self, addr: int, persistent: bool = True) -> Op:
        return Op(OpKind.WRITE, addr, self._gap(), persistent)

    def _persist(self) -> Op:
        return Op(OpKind.PERSIST, 0, self._gap(5, 20))
