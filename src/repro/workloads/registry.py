"""Workload registry: the paper's 5 micro- + 2 macro-benchmarks."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.workloads.array import ArrayWorkload
from repro.workloads.base import Workload
from repro.workloads.btree import BTreeWorkload
from repro.workloads.hashtable import HashTableWorkload
from repro.workloads.queue import QueueWorkload
from repro.workloads.rbtree import RBTreeWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.ycsb import YcsbWorkload

MICRO_WORKLOADS: List[str] = ["array", "btree", "hash", "queue", "rbtree"]
MACRO_WORKLOADS: List[str] = ["tpcc", "ycsb"]
ALL_WORKLOADS: List[str] = MICRO_WORKLOADS + MACRO_WORKLOADS

WORKLOAD_CLASSES: Dict[str, Type[Workload]] = {
    "array": ArrayWorkload,
    "btree": BTreeWorkload,
    "hash": HashTableWorkload,
    "queue": QueueWorkload,
    "rbtree": RBTreeWorkload,
    "tpcc": TpccWorkload,
    "ycsb": YcsbWorkload,
}


def make_workload(name: str, num_data_lines: int,
                  operations: int = 2000, seed: int = 42,
                  **kwargs) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        cls = WORKLOAD_CLASSES[name]
    except KeyError:
        raise ValueError(
            "unknown workload %r (choose from %s)"
            % (name, ", ".join(sorted(WORKLOAD_CLASSES)))
        ) from None
    return cls(num_data_lines, operations=operations, seed=seed, **kwargs)


def make_threaded_trace(name: str, num_data_lines: int,
                        threads: int = 8, operations: int = 2000,
                        seed: int = 42, chunk: int = 4, **kwargs):
    """A multi-threaded trace, as the paper runs its benchmarks.

    The address space is partitioned across ``threads`` independent
    instances of the workload (each with its own RNG stream) and their
    traces are interleaved in memory order. ``operations`` is the
    per-thread count.
    """
    from repro.workloads.trace import Op, interleave_traces

    if threads < 1:
        raise ValueError("need at least one thread")
    partition = num_data_lines // threads
    if partition < 64:
        raise ValueError(
            "address space too small for %d threads" % threads
        )

    def shifted(thread: int):
        workload = make_workload(
            name, partition, operations=operations,
            seed=seed + thread, **kwargs,
        )
        base = thread * partition
        for op in workload.ops():
            yield Op(op.kind, op.addr + base, op.instructions,
                     op.persistent)

    traces = [shifted(thread) for thread in range(threads)]
    return interleave_traces(traces, chunk=chunk, seed=seed)
