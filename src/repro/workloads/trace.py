"""Memory-reference traces.

Workloads emit a stream of :class:`Op` records — line-granular loads,
stores and persist barriers, with the number of retired instructions
since the previous record. The machine replays the stream through the
CPU cache hierarchy and the secure memory controller.

Persistent stores model clwb semantics (the line is written through to
the memory controller); scratch stores stay dirty in the hierarchy and
reach memory only via LLC write-backs, like any cached store.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List


class OpKind(enum.Enum):
    """The three kinds of trace records."""

    READ = "read"
    WRITE = "write"
    PERSIST = "persist"


@dataclass(frozen=True)
class Op:
    """One trace record (addresses are 64B line numbers)."""

    kind: OpKind
    addr: int = 0
    instructions: int = 0
    persistent: bool = True

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError("line address must be non-negative")
        if self.instructions < 0:
            raise ValueError("instruction gap must be non-negative")


class TraceBuilder:
    """Convenience emitter used by the workload implementations."""

    def __init__(self, instructions_per_op: int = 50) -> None:
        self.instructions_per_op = instructions_per_op
        self._ops: List[Op] = []

    def read(self, addr: int, instructions: int = -1) -> None:
        self._ops.append(Op(OpKind.READ, addr, self._gap(instructions)))

    def write(self, addr: int, instructions: int = -1,
              persistent: bool = True) -> None:
        self._ops.append(
            Op(OpKind.WRITE, addr, self._gap(instructions), persistent)
        )

    def persist(self, instructions: int = -1) -> None:
        self._ops.append(Op(OpKind.PERSIST, 0, self._gap(instructions)))

    def _gap(self, instructions: int) -> int:
        return (
            self.instructions_per_op if instructions < 0 else instructions
        )

    def ops(self) -> List[Op]:
        return list(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self._ops)


def count_kinds(ops: Iterable[Op]) -> dict:
    """Histogram of op kinds (test/inspection helper)."""
    counts = {kind: 0 for kind in OpKind}
    for op in ops:
        counts[op.kind] += 1
    return counts


def interleave_traces(traces, chunk: int = 4,
                      seed: int = 0) -> Iterator[Op]:
    """Merge several threads' traces into one memory-order stream.

    The paper runs every benchmark with 8 threads; the memory system
    sees their references interleaved. This helper emits ``chunk``-sized
    bursts from each live trace in a seeded random order until all are
    exhausted — enough to reproduce the inter-thread locality disruption
    without simulating true concurrency.

    Note: threads must not share persistent lines (each workload
    instance owns its own heap), so interleaving never reorders
    conflicting accesses.
    """
    import random

    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    rng = random.Random(seed)
    iterators = [iter(trace) for trace in traces]
    while iterators:
        source = rng.choice(iterators)
        emitted = 0
        while emitted < chunk:
            try:
                yield next(source)
            except StopIteration:
                iterators.remove(source)
                break
            emitted += 1
