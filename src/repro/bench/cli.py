"""``star-bench``: regenerate the paper's evaluation from the command
line.

Examples::

    star-bench                      # every experiment, default scale
    star-bench --experiment fig11   # one experiment
    star-bench --scale smoke        # fast smoke-scale run
    star-bench --batch              # batched epoch pipeline (same
                                    # numbers, less wall-clock)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.bench import experiments
from repro.bench.tables import render_table


def _sweep_cache(scale="default", **_kwargs):
    from repro.bench.sweeps import sweep_metadata_cache
    return sweep_metadata_cache(scale)


def _sweep_stride(scale="default", **_kwargs):
    from repro.bench.sweeps import sweep_phoenix_stride
    return sweep_phoenix_stride()


def _sweep_fanout(scale="default", **_kwargs):
    from repro.bench.sweeps import sweep_bitmap_fanout
    return sweep_bitmap_fanout(scale)


def _characterize(scale="default", **_kwargs):
    from repro.bench.characterize import experiment_characterization
    return experiment_characterization(scale)


_EXPERIMENTS = {
    "fig10": experiments.experiment_fig10,
    "fig11": experiments.experiment_fig11,
    "fig12": experiments.experiment_fig12,
    "fig13": experiments.experiment_fig13,
    "table2": experiments.experiment_table2,
    "fig14a": experiments.experiment_fig14a,
    "fig14b": experiments.experiment_fig14b,
    "sweep-cache": _sweep_cache,
    "sweep-stride": _sweep_stride,
    "sweep-fanout": _sweep_fanout,
    "characterize": _characterize,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="star-bench",
        description="Reproduce the STAR (HPCA 2021) evaluation tables "
                    "and figures.",
    )
    parser.add_argument(
        "--experiment", choices=sorted(_EXPERIMENTS) + ["all"],
        default="all", help="which experiment to run (default: all)",
    )
    parser.add_argument(
        "--scale", choices=("smoke", "default", "large"),
        default="default", help="experiment scale (default: default)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="workload RNG seed",
    )
    parser.add_argument(
        "--batch", metavar="EPOCH", type=int, nargs="?", const=True,
        default=None,
        help="replay experiments through the batched epoch pipeline "
             "(optionally with an explicit epoch size; default 256). "
             "Results are bit-identical to the per-reference loop — "
             "see tests/test_batch_parity.py — so this only changes "
             "how fast the tables are produced",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="additionally dump the reproduced tables as JSON",
    )
    parser.add_argument(
        "--markdown", metavar="PATH", default=None,
        help="additionally write a Markdown report of the tables",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="render ASCII bar charts alongside the tables",
    )
    parser.add_argument(
        "--svg", metavar="DIR", default=None,
        help="additionally write one SVG bar chart per experiment",
    )
    parser.add_argument(
        "--layout", action="store_true",
        help="print the memory layout (Table I companion) and exit",
    )
    parser.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="additionally run one instrumented STAR crash+recovery at "
             "the chosen scale and write metrics.json / metrics.prom / "
             "events.jsonl / spans.txt / trace.json into DIR",
    )
    parser.add_argument(
        "--perf", metavar="PATH", nargs="?", const="BENCH_hotpath.json",
        default=None,
        help="run the hot-path micro-benchmarks and append a trajectory "
             "entry to PATH (default: BENCH_hotpath.json); seeds the "
             "baseline when the file is empty, then exits",
    )
    parser.add_argument(
        "--perf-note", metavar="TEXT", default="",
        help="annotation stored with the --perf trajectory entry",
    )
    parser.add_argument(
        "--lab", metavar="DIR", default=None,
        help="serve experiment cells from (and commit misses to) the "
             "lab result store at DIR — see star-lab",
    )
    args = parser.parse_args(argv)

    if args.batch is not None:
        from repro.bench.runner import set_default_batch

        set_default_batch(args.batch)

    lab = None
    if args.lab:
        from repro.lab.bridge import LabCache

        lab = LabCache(args.lab)

    if args.perf:
        from repro.bench.hotpath import append_trajectory, run_hotpath

        result = run_hotpath()
        payload = append_trajectory(args.perf, result,
                                    note=args.perf_note)
        for name, score in result["scores"].items():
            base = (payload["baseline"] or {}).get("scores", {}).get(name)
            delta = ("%+.1f%% vs baseline" % ((score / base - 1) * 100.0)
                     if base else "baseline seeded")
            print("%-16s score %8.2f  (%s)" % (name, score, delta))
        print("appended trajectory entry #%d to %s"
              % (len(payload["trajectory"]), args.perf))
        return 0

    if args.layout:
        from repro.bench.runner import config_for_scale
        from repro.mem.layout import MemoryLayout

        layout = MemoryLayout.from_config(config_for_scale(args.scale))
        for key, value in layout.summary().items():
            print("%-24s %s" % (key, value))
        return 0

    # perf_counter: monotonic, immune to wall-clock adjustments
    started = time.perf_counter()
    if args.experiment == "all":
        tables = experiments.run_all(scale=args.scale, seed=args.seed,
                                     lab=lab)
    else:
        tables = [_EXPERIMENTS[args.experiment](scale=args.scale,
                                                lab=lab)]
    for table in tables:
        print(render_table(table))
        if args.chart:
            from repro.bench.report import render_bar_chart

            label = table.columns[0]
            numeric = [
                column for column in table.columns[1:]
                if any(isinstance(row.get(column), (int, float))
                       and not isinstance(row.get(column), bool)
                       for row in table.rows)
            ]
            if numeric:
                print()
                print(render_bar_chart(table, label, numeric))
        print()
    if args.svg:
        import os
        import re

        from repro.bench.svgchart import save_svg

        os.makedirs(args.svg, exist_ok=True)
        for table in tables:
            slug = re.sub(r"[^a-z0-9]+", "_",
                          table.experiment_id.lower()).strip("_")
            path = os.path.join(args.svg, slug + ".svg")
            save_svg(table, path)
            print("wrote %s" % path)
    if args.markdown:
        from repro.bench.report import render_markdown_report

        with open(args.markdown, "w") as handle:
            handle.write(render_markdown_report(tables))
        print("wrote %s" % args.markdown)
    if args.json:
        payload = [
            {
                "experiment": table.experiment_id,
                "title": table.title,
                "columns": table.columns,
                "rows": table.rows,
                "notes": table.notes,
            }
            for table in tables
        ]
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print("wrote %s" % args.json)
    if args.telemetry:
        _dump_telemetry(args.telemetry, scale=args.scale,
                        seed=args.seed)
    print("completed in %.1fs" % (time.perf_counter() - started))
    return 0


def _dump_telemetry(directory: str, scale: str, seed: int) -> None:
    """One instrumented STAR run: JSON + Prometheus + JSONL exports."""
    import os

    from repro.bench.runner import config_for_scale, SCALES
    from repro.obs.export import to_json, to_prometheus_text
    from repro.obs.render import render_span_tree
    from repro.sim.machine import Machine
    from repro.workloads.registry import make_workload

    os.makedirs(directory, exist_ok=True)
    config = config_for_scale(scale)
    machine = Machine(config, scheme="star", profile=True)
    events_path = os.path.join(directory, "events.jsonl")
    machine.stats.registry.events.open_sink(events_path)
    workload = make_workload(
        "hash", config.num_data_lines,
        operations=SCALES[scale].micro_operations, seed=seed,
    )
    machine.run(workload.ops())
    machine.crash()
    machine.recover()
    machine.stats.registry.events.close_sink()

    json_path = os.path.join(directory, "metrics.json")
    with open(json_path, "w") as handle:
        handle.write(to_json(machine.stats.registry))
    prom_path = os.path.join(directory, "metrics.prom")
    with open(prom_path, "w") as handle:
        handle.write(to_prometheus_text(machine.stats.registry))
        handle.write(to_prometheus_text(
            machine.recovery_stats.registry,
            namespace="star_recovery",
        ))
    spans_path = os.path.join(directory, "spans.txt")
    with open(spans_path, "w") as handle:
        handle.write(render_span_tree(
            machine.recovery_stats.registry.tracer.to_list()
        ) + "\n")
    trace_path = os.path.join(directory, "trace.json")
    machine.profiler.write_chrome_trace(trace_path)
    for path in (events_path, json_path, prom_path, spans_path,
                 trace_path):
        print("wrote %s" % path)


if __name__ == "__main__":
    sys.exit(main())
