"""Bench harness: experiment runner and paper table/figure generators."""

from repro.bench.experiments import (
    experiment_fig10,
    experiment_fig11,
    experiment_fig12,
    experiment_fig13,
    experiment_fig14a,
    experiment_fig14b,
    experiment_table2,
    paper_grid,
    run_all,
)
from repro.bench.runner import (
    PAPER_SCHEMES,
    SCALES,
    config_for_scale,
    geometric_mean,
    run_grid,
    run_one,
)
from repro.bench.tables import ExperimentTable, render_table, render_tables

__all__ = [
    "ExperimentTable",
    "PAPER_SCHEMES",
    "SCALES",
    "config_for_scale",
    "experiment_fig10",
    "experiment_fig11",
    "experiment_fig12",
    "experiment_fig13",
    "experiment_fig14a",
    "experiment_fig14b",
    "experiment_table2",
    "geometric_mean",
    "paper_grid",
    "render_table",
    "render_tables",
    "run_all",
    "run_grid",
    "run_one",
]
