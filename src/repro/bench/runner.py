"""Experiment driver: run scheme x workload grids and collect results.

Every figure/table reproduction in :mod:`repro.bench.experiments` is a
thin layer over :func:`run_grid`. The default experiment scale is a
1/256-scale machine (64 MB NVM, 64 KB metadata cache — see
:func:`repro.config.sim_config` for the scaling argument); ``scale``
picks smaller/larger grids for quick smoke runs or higher fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

from repro.config import SystemConfig, sim_config
from repro.sim.machine import Machine
from repro.sim.results import RunResult
from repro.workloads.registry import ALL_WORKLOADS, make_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lab.bridge import LabCache

GridKey = Tuple[str, str]
"""(scheme name, workload name)."""


@dataclass(frozen=True)
class BenchScale:
    """One experiment scale: machine size + per-workload op counts."""

    memory_bytes: int
    metadata_cache_bytes: int
    llc_bytes: int
    micro_operations: int
    macro_operations: int

    def operations_for(self, workload: str) -> int:
        if workload in ("tpcc",):
            return self.macro_operations
        return self.micro_operations


SCALES: Dict[str, BenchScale] = {
    "smoke": BenchScale(
        memory_bytes=8 * 1024 ** 2,
        metadata_cache_bytes=4 * 1024,
        llc_bytes=32 * 1024,
        micro_operations=300,
        macro_operations=60,
    ),
    "default": BenchScale(
        memory_bytes=32 * 1024 ** 2,
        metadata_cache_bytes=64 * 1024,
        llc_bytes=64 * 1024,
        micro_operations=1500,
        macro_operations=250,
    ),
    "large": BenchScale(
        memory_bytes=128 * 1024 ** 2,
        metadata_cache_bytes=32 * 1024,
        llc_bytes=256 * 1024,
        micro_operations=6000,
        macro_operations=1000,
    ),
}

PAPER_SCHEMES: List[str] = ["wb", "strict", "anubis", "star"]

DEFAULT_BATCH: Union[bool, int, None] = None
"""Process-wide pipeline default for :func:`run_one`.

``None`` replays through the canonical per-reference loop; ``True`` or
an epoch size opts every run whose caller did not pass ``batch``
explicitly into the batched epoch pipeline (``star-bench --batch`` sets
this). Results are bit-identical either way, so the knob never changes
an experiment's numbers — only how long it takes to produce them.
"""


def set_default_batch(batch: Union[bool, int, None]) -> None:
    """Select the default execution pipeline for this process."""
    global DEFAULT_BATCH
    DEFAULT_BATCH = batch


def config_for_scale(scale: str = "default",
                     adr_bitmap_lines: int = 16,
                     bitmap_fanout: int = 128) -> SystemConfig:
    """The machine configuration used by the named experiment scale."""
    try:
        spec = SCALES[scale]
    except KeyError:
        raise ValueError(
            "unknown scale %r (choose from %s)"
            % (scale, ", ".join(sorted(SCALES)))
        ) from None
    return sim_config(
        memory_bytes=spec.memory_bytes,
        metadata_cache_bytes=spec.metadata_cache_bytes,
        llc_bytes=spec.llc_bytes,
        adr_bitmap_lines=adr_bitmap_lines,
        bitmap_fanout=bitmap_fanout,
    )


def run_one(config: SystemConfig, scheme: str, workload: str,
            operations: int, seed: int = 42,
            crash_and_recover: bool = False,
            telemetry: bool = True,
            events_jsonl: Optional[str] = None,
            batch: Union[bool, int, None] = None,
            lab: Optional["LabCache"] = None) -> RunResult:
    """Run one workload under one scheme; optionally crash + recover.

    Telemetry (histograms, spans, the structured event log) is on by
    default and lands in ``RunResult.extras["telemetry"]``;
    ``events_jsonl`` additionally streams the event log to a JSONL file
    while the run executes.

    ``batch`` selects the batched epoch pipeline
    (:mod:`repro.sim.batch`) with the given epoch size; ``None`` defers
    to the process-wide :data:`DEFAULT_BATCH` (scalar unless
    ``star-bench --batch`` / :func:`set_default_batch` chose
    otherwise). Results are bit-identical either way (pinned by
    ``tests/test_batch_parity.py``), so the flag is purely a speed
    choice.

    ``lab`` routes the cell through a :class:`repro.lab.LabCache`: a
    cell already in the store is deserialized instead of re-simulated,
    a missing one is computed once and committed. Lab cells carry the
    counter snapshot but no live telemetry objects, so ``telemetry``
    and ``events_jsonl`` are ignored on that path.
    """
    if lab is not None:
        return lab.run_one(
            config, scheme, workload, operations, seed=seed,
            crash_and_recover=crash_and_recover,
        )
    if batch is None:
        batch = DEFAULT_BATCH
    machine = Machine(config, scheme=scheme, telemetry=telemetry,
                      batch=batch)
    if events_jsonl is not None:
        machine.stats.registry.events.open_sink(events_jsonl)
    try:
        bench = make_workload(
            workload, config.num_data_lines, operations=operations,
            seed=seed
        )
        machine.run(bench.ops())
        recovery = None
        if crash_and_recover:
            machine.crash()
            recovery = machine.recover()
    finally:
        machine.stats.registry.events.close_sink()
    return machine.result(workload, recovery=recovery)


def run_grid(config: SystemConfig,
             schemes: Optional[Iterable[str]] = None,
             workloads: Optional[Iterable[str]] = None,
             operations: Optional[Dict[str, int]] = None,
             scale: str = "default",
             seed: int = 42,
             lab: Optional["LabCache"] = None) -> Dict[GridKey, RunResult]:
    """Run every (scheme, workload) pair and return the result grid."""
    spec = SCALES[scale]
    schemes = list(schemes) if schemes is not None else list(PAPER_SCHEMES)
    workloads = (
        list(workloads) if workloads is not None else list(ALL_WORKLOADS)
    )
    grid: Dict[GridKey, RunResult] = {}
    for workload in workloads:
        ops = (
            operations[workload]
            if operations and workload in operations
            else spec.operations_for(workload)
        )
        for scheme in schemes:
            grid[(scheme, workload)] = run_one(
                config, scheme, workload, ops, seed=seed, lab=lab
            )
    return grid


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional average for normalized ratios)."""
    values = [value for value in values if value > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
