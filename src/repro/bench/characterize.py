"""Workload characterization (the evaluation-setup companion table).

Papers in this space typically tabulate their benchmarks' reference
behaviour; the paper describes its seven workloads only qualitatively
(hash/array are write-heavy, macros have higher locality). This
experiment makes those properties measurable: per-operation reference
mix, persist frequency, footprint, and two locality measures — the
fraction of accesses whose line falls in the same page (counter block)
as the previous access, and the unique-page count.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bench.runner import SCALES, config_for_scale
from repro.bench.tables import ExperimentTable
from repro.workloads.registry import ALL_WORKLOADS, make_workload
from repro.workloads.trace import OpKind


def characterize_workload(name: str, num_data_lines: int,
                          operations: int, seed: int = 42) -> dict:
    """Reference-stream statistics of one workload."""
    workload = make_workload(name, num_data_lines,
                             operations=operations, seed=seed)
    reads = writes = persists = instructions = 0
    same_page = transitions = 0
    lines = set()
    pages = set()
    previous_page: Optional[int] = None
    for op in workload.ops():
        instructions += op.instructions
        if op.kind is OpKind.PERSIST:
            persists += 1
            continue
        if op.kind is OpKind.READ:
            reads += 1
        else:
            writes += 1
        page = op.addr // 8  # a counter block covers 8 lines (SIT)
        lines.add(op.addr)
        pages.add(page)
        if previous_page is not None:
            transitions += 1
            if page == previous_page:
                same_page += 1
        previous_page = page
    accesses = reads + writes
    return {
        "workload": name,
        "reads": reads,
        "writes": writes,
        "persists": persists,
        "write_share": writes / accesses if accesses else 0.0,
        "instr_per_access": instructions / accesses if accesses else 0.0,
        "footprint_kb": len(lines) * 64 / 1024,
        "pages": len(pages),
        "page_locality": same_page / transitions if transitions else 0.0,
    }


def experiment_characterization(
    scale: str = "default",
    workloads: Optional[Iterable[str]] = None,
    seed: int = 42,
) -> ExperimentTable:
    """One row of reference statistics per workload."""
    spec = SCALES[scale]
    config = config_for_scale(scale)
    workloads = (
        list(workloads) if workloads is not None else list(ALL_WORKLOADS)
    )
    table = ExperimentTable(
        experiment_id="Char.",
        title="workload reference-stream characterization",
        columns=["workload", "reads", "writes", "persists",
                 "write_share", "instr_per_access", "footprint_kb",
                 "page_locality"],
        notes=[
            "page_locality = share of consecutive accesses landing in "
            "the same counter-block page; the paper's qualitative "
            "claims (hash is write-heavy and scattered, queue/array "
            "are local) made measurable",
        ],
    )
    for name in workloads:
        stats = characterize_workload(
            name, config.num_data_lines,
            spec.operations_for(name), seed=seed,
        )
        stats.pop("pages")
        table.add_row(**stats)
    return table
