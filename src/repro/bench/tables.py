"""Plain-text rendering of experiment tables (figures become tables of
their plotted series, exactly the rows/columns the paper reports)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


@dataclass
class ExperimentTable:
    """One reproduced table/figure: labelled rows of named columns."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **cells: Cell) -> None:
        self.rows.append(cells)

    def column(self, name: str) -> List[Cell]:
        return [row.get(name, "") for row in self.rows]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.001:
            return "%.3g" % value
        return "%.3f" % value
    return str(value)


def render_table(table: ExperimentTable) -> str:
    """Render as an aligned, monospaced text table."""
    header = [table.columns]
    body = [
        [_format_cell(row.get(column, "")) for column in table.columns]
        for row in table.rows
    ]
    widths = [
        max(len(line[index]) for line in header + body)
        for index in range(len(table.columns))
    ]
    lines = [
        "%s — %s" % (table.experiment_id, table.title),
        "  ".join(
            name.ljust(width) for name, width in zip(table.columns, widths)
        ),
        "  ".join("-" * width for width in widths),
    ]
    for cells in body:
        lines.append(
            "  ".join(cell.ljust(width)
                      for cell, width in zip(cells, widths))
        )
    for note in table.notes:
        lines.append("note: %s" % note)
    return "\n".join(lines)


def render_tables(tables: Sequence[ExperimentTable]) -> str:
    return "\n\n".join(render_table(table) for table in tables)
