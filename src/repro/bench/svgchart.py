"""Standalone SVG bar charts of the reproduced figures.

``star-bench --svg DIR`` renders each experiment as a grouped bar chart
(one group per row, one bar per numeric column) in a self-contained
``.svg`` file — no plotting dependencies, viewable in any browser. The
visual layout mirrors the paper's figures: workloads on the x-axis,
normalized values on the y-axis, one shade per scheme.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bench.tables import ExperimentTable

# a small colour-blind-safe palette
PALETTE = ("#4477aa", "#ee6677", "#228833", "#ccbb44",
           "#66ccee", "#aa3377", "#bbbbbb")

CHART_WIDTH = 640
CHART_HEIGHT = 360
MARGIN_LEFT = 56
MARGIN_BOTTOM = 64
MARGIN_TOP = 40
MARGIN_RIGHT = 16


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _numeric_rows(table: ExperimentTable,
                  value_columns: Sequence[str]) -> List[dict]:
    rows = []
    for row in table.rows:
        values = [row.get(column) for column in value_columns]
        if all(isinstance(value, (int, float))
               and not isinstance(value, bool) for value in values):
            rows.append(row)
    return rows


def numeric_columns(table: ExperimentTable) -> List[str]:
    """The chartable columns: numeric in at least one row."""
    names = []
    for column in table.columns[1:]:
        for row in table.rows:
            value = row.get(column)
            if isinstance(value, (int, float)) and \
                    not isinstance(value, bool):
                names.append(column)
                break
    return names


def render_svg(table: ExperimentTable,
               label_column: Optional[str] = None,
               value_columns: Optional[Sequence[str]] = None) -> str:
    """Render one experiment table as an SVG grouped bar chart."""
    label_column = label_column or table.columns[0]
    value_columns = list(value_columns or numeric_columns(table))
    rows = _numeric_rows(table, value_columns)
    if not rows or not value_columns:
        return (
            '<svg xmlns="http://www.w3.org/2000/svg" width="320" '
            'height="60"><text x="10" y="35" font-family="sans-serif">'
            "no numeric data to chart</text></svg>"
        )
    peak = max(float(row[column])
               for row in rows for column in value_columns)
    peak = peak if peak > 0 else 1.0

    plot_width = CHART_WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    plot_height = CHART_HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
    group_width = plot_width / len(rows)
    bar_width = max(2.0, group_width * 0.8 / len(value_columns))
    baseline_y = MARGIN_TOP + plot_height

    parts: List[str] = [
        '<svg xmlns="http://www.w3.org/2000/svg" width="%d" '
        'height="%d" font-family="sans-serif">'
        % (CHART_WIDTH, CHART_HEIGHT),
        '<text x="%d" y="22" font-size="14" font-weight="bold">'
        "%s — %s</text>"
        % (MARGIN_LEFT, _esc(table.experiment_id), _esc(table.title)),
        # y axis + gridlines at quarters of the peak
        '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>'
        % (MARGIN_LEFT, MARGIN_TOP, MARGIN_LEFT, baseline_y),
        '<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>'
        % (MARGIN_LEFT, baseline_y, CHART_WIDTH - MARGIN_RIGHT,
           baseline_y),
    ]
    for quarter in range(1, 5):
        value = peak * quarter / 4
        y = baseline_y - plot_height * quarter / 4
        parts.append(
            '<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" '
            'stroke="#ddd"/>' % (MARGIN_LEFT, y,
                                 CHART_WIDTH - MARGIN_RIGHT, y)
        )
        parts.append(
            '<text x="%d" y="%.1f" font-size="10" text-anchor="end">'
            "%.3g</text>" % (MARGIN_LEFT - 4, y + 3, value)
        )
    # bars
    for group, row in enumerate(rows):
        group_x = MARGIN_LEFT + group * group_width
        for series, column in enumerate(value_columns):
            value = float(row[column])
            height = plot_height * value / peak
            x = group_x + group_width * 0.1 + series * bar_width
            parts.append(
                '<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" '
                'fill="%s"><title>%s / %s = %.4g</title></rect>'
                % (x, baseline_y - height, bar_width * 0.92, height,
                   PALETTE[series % len(PALETTE)],
                   _esc(row.get(label_column, "")), _esc(column),
                   value)
            )
        parts.append(
            '<text x="%.1f" y="%d" font-size="10" text-anchor="middle">'
            "%s</text>"
            % (group_x + group_width / 2, baseline_y + 14,
               _esc(row.get(label_column, "")))
        )
    # legend
    legend_y = CHART_HEIGHT - 18
    legend_x = MARGIN_LEFT
    for series, column in enumerate(value_columns):
        parts.append(
            '<rect x="%d" y="%d" width="10" height="10" fill="%s"/>'
            % (legend_x, legend_y - 9,
               PALETTE[series % len(PALETTE)])
        )
        parts.append(
            '<text x="%d" y="%d" font-size="11">%s</text>'
            % (legend_x + 14, legend_y, _esc(column))
        )
        legend_x += 14 + 8 * len(column) + 18
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(table: ExperimentTable, path: str, **kwargs) -> None:
    with open(path, "w") as handle:
        handle.write(render_svg(table, **kwargs))
