"""Sensitivity sweeps beyond the paper's headline figures.

The paper varies the ADR line budget (Table II) and the metadata cache
size (Fig. 14b); these sweeps extend the same methodology to the other
design parameters DESIGN.md calls out:

* **metadata cache size** — how traffic/IPC/dirty-fraction respond,
* **Phoenix persist stride** — the write-traffic vs recovery-probing
  trade-off of the Osiris relaxation,
* **bitmap fanout** — coverage per bitmap line vs ADR pressure (the
  knob used to scale the simulated machine; this sweep documents its
  effect explicitly).
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.runner import SCALES, config_for_scale, run_one
from repro.bench.tables import ExperimentTable
from repro.sim.machine import Machine
from repro.workloads.registry import make_workload


def sweep_metadata_cache(
    scale: str = "default",
    cache_sizes_bytes: Sequence[int] = (8 * 1024, 16 * 1024,
                                        32 * 1024, 64 * 1024),
    workload: str = "hash",
    seed: int = 42,
) -> ExperimentTable:
    """Scheme behaviour as the metadata cache grows."""
    spec = SCALES[scale]
    table = ExperimentTable(
        experiment_id="Sweep A",
        title="metadata cache size sensitivity (%s)" % workload,
        columns=["cache_kb", "wb_writes", "star_norm_writes",
                 "star_norm_ipc", "dirty_fraction"],
        notes=[
            "a larger cache absorbs evictions: write-back traffic "
            "falls and STAR's overhead shrinks toward zero",
        ],
    )
    for size in cache_sizes_bytes:
        config = config_for_scale(scale).with_metadata_cache_bytes(size)
        operations = spec.operations_for(workload)
        wb = run_one(config, "wb", workload, operations, seed=seed)
        star = run_one(config, "star", workload, operations, seed=seed)
        table.add_row(
            cache_kb=size // 1024,
            wb_writes=wb.nvm_writes,
            star_norm_writes=star.normalized_writes(wb),
            star_norm_ipc=star.normalized_ipc(wb),
            dirty_fraction=star.dirty_fraction,
        )
    return table


def sweep_phoenix_stride(
    strides: Sequence[int] = (1, 2, 4, 8, 16),
    workload: str = "hash",
    operations: int = 400,
    seed: int = 42,
) -> ExperimentTable:
    """Phoenix's persist stride: writes vs recovery cost."""
    from repro.config import small_config
    from repro.schemes.phoenix import PhoenixScheme

    table = ExperimentTable(
        experiment_id="Sweep B",
        title="Phoenix persist-stride trade-off (%s)" % workload,
        columns=["stride", "nvm_writes", "periodic_persists",
                 "recovery_reads", "recovery_exact"],
        notes=[
            "longer strides cut periodic counter-block persists but "
            "lengthen the recovery probe window — the Osiris dial",
        ],
    )
    config = small_config()
    for stride in strides:
        machine = Machine(config,
                          scheme=PhoenixScheme(persist_stride=stride))
        bench = make_workload(workload, config.num_data_lines,
                              operations=operations, seed=seed)
        machine.run(bench.ops())
        writes = machine.nvm.total_writes()
        persists = machine.stats["phoenix.periodic_persists"]
        machine.crash()
        report = machine.recover()
        table.add_row(
            stride=stride,
            nvm_writes=writes,
            periodic_persists=persists,
            recovery_reads=report.nvm_reads,
            recovery_exact=machine.oracle_check(report),
        )
    return table


def sweep_bitmap_fanout(
    scale: str = "default",
    fanouts: Sequence[int] = (32, 64, 128, 256, 512),
    workload: str = "hash",
    adr_lines: int = 16,
    seed: int = 42,
) -> ExperimentTable:
    """Coverage per bitmap line vs ADR pressure."""
    spec = SCALES[scale]
    table = ExperimentTable(
        experiment_id="Sweep C",
        title="bitmap-line fanout sensitivity (%s)" % workload,
        columns=["fanout", "bitmap_writes", "adr_hit_ratio",
                 "star_extra_write_pct"],
        notes=[
            "hardware uses 512 bits/line; at scaled machines a smaller "
            "fanout reproduces the paper's ADR pressure (DESIGN.md)",
        ],
    )
    for fanout in fanouts:
        config = config_for_scale(scale, adr_bitmap_lines=adr_lines,
                                  bitmap_fanout=fanout)
        operations = spec.operations_for(workload)
        wb = run_one(config, "wb", workload, operations, seed=seed)
        star = run_one(config, "star", workload, operations, seed=seed)
        extra = star.nvm_writes - wb.nvm_writes
        table.add_row(
            fanout=fanout,
            bitmap_writes=star.bitmap_writes,
            adr_hit_ratio=star.adr_hit_ratio,
            star_extra_write_pct=100.0 * extra / wb.nvm_writes,
        )
    return table
