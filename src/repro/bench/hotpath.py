"""Hot-path micro-benchmarks and the perf-regression gate.

The simulator's credibility rests on running the paper's grids fast
enough to iterate on; this module pins that property. It times four
scenarios that cover the per-access hot paths:

* ``write_mix`` — the scheme x workload runtime path (counter-mode
  encryption, SIT persists, bitmap maintenance, WPQ timing) with
  telemetry enabled, run through the batched epoch pipeline
  (``Machine(batch=256)``) that sweeps use for scale,
* ``write_mix_scalar`` — the same grid through the canonical
  per-reference loop, so a regression in either pipeline is caught
  independently,
* ``telemetry_off`` — the scalar path with ``telemetry=False``,
  guarding the zero-cost disabled fast path of the Stats facade,
* ``recovery`` — repeated crash + STAR recovery (locate walk, counter
  reconstruction, MAC recomputation, counted RA clearing).

Raw seconds are meaningless across machines, so every run first times a
fixed pure-Python **calibration loop** (dict churn, integer mixing,
BLAKE2b digests — the same primitive mix the simulator spends its time
in) and reports each scenario as a *normalized score* =
``scenario_seconds / calibration_seconds``. Scores are stable across
hosts to within a few percent, which is what makes a committed baseline
(``BENCH_hotpath.json``) meaningful in CI.

The gate (:func:`check_regression`) fails when any scenario's score
exceeds the baseline score by more than the threshold (default 15%).
``star-bench --perf`` appends trajectory entries to the same JSON so the
history of the repo's performance rides along with the code.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Callable, Dict, List, Optional

DEFAULT_THRESHOLD = 0.15
"""Maximum tolerated relative slowdown before the gate fails."""

DEFAULT_REPEATS = 3
"""Scenarios report the best of this many runs (min is the standard
noise-robust estimator for micro-benchmarks)."""


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
def calibrate(repeats: int = DEFAULT_REPEATS) -> float:
    """Seconds for a fixed pure-Python workload on this interpreter.

    The loop mixes the primitives the simulator hot paths are made of:
    dict lookups/stores, integer arithmetic and keyed BLAKE2b digests.
    Dividing scenario times by this value cancels host speed.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        accumulator = 0
        table: Dict[int, int] = {}
        for i in range(50000):
            table[i & 1023] = accumulator
            accumulator = (accumulator + i) ^ (accumulator >> 3)
            if not i & 63:
                hashlib.blake2b(
                    accumulator.to_bytes(8, "big"),
                    key=b"calibration", digest_size=8,
                ).digest()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def _write_mix_grid(batch: Optional[int]) -> float:
    """Time the write-mix grid through one execution pipeline.

    The op streams are generated *outside* the timed window: the
    scenario pins the machine's execution hot path, not the workload
    generator (which is shared by both pipelines and exercised by its
    own tests). Telemetry stays on, matching the sweep configuration
    the score is meant to protect.
    """
    from repro.bench.runner import config_for_scale
    from repro.sim.machine import Machine
    from repro.workloads.registry import make_workload

    config = config_for_scale("smoke")
    streams = {
        name: list(
            make_workload(
                name, config.num_data_lines, operations=300, seed=11
            ).ops()
        )
        for name in ("hash", "array")
    }
    start = time.perf_counter()
    for scheme in ("wb", "anubis", "star"):
        for name in ("hash", "array"):
            machine = Machine(
                config, scheme=scheme, telemetry=True, batch=batch
            )
            machine.run(streams[name])
            machine.result(name)
    return time.perf_counter() - start


def bench_write_mix() -> float:
    """The runtime hot path: the scheme x workload grid, batched.

    Runs the batched epoch pipeline (``Machine(batch=256)``), the
    configuration sweeps use for scale. Results are bit-identical to
    the scalar path (``tests/test_batch_parity.py``), so this scenario
    guards speed only; ``write_mix_scalar`` pins the canonical loop.
    """
    return _write_mix_grid(batch=256)


def bench_write_mix_scalar() -> float:
    """The same grid through the canonical per-reference loop."""
    return _write_mix_grid(batch=None)


def bench_telemetry_off() -> float:
    """The overhead-sensitive sweep path (telemetry=False)."""
    from repro.bench.runner import config_for_scale, run_one

    config = config_for_scale("smoke")
    start = time.perf_counter()
    for workload in ("hash", "array"):
        run_one(config, "star", workload, operations=400, seed=11,
                crash_and_recover=False, telemetry=False)
    return time.perf_counter() - start


def bench_recovery() -> float:
    """Crash + STAR recovery, repeated: the Fig. 14(b) code path."""
    from repro.config import small_config
    from repro.sim.machine import Machine
    from repro.workloads.registry import make_workload

    config = small_config()
    start = time.perf_counter()
    for seed in (3, 5, 7):
        machine = Machine(config, scheme="star")
        workload = make_workload(
            "hash", config.num_data_lines, operations=250, seed=seed
        )
        machine.run(workload.ops())
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert report.verified
    return time.perf_counter() - start


SCENARIOS: Dict[str, Callable[[], float]] = {
    "write_mix": bench_write_mix,
    "write_mix_scalar": bench_write_mix_scalar,
    "telemetry_off": bench_telemetry_off,
    "recovery": bench_recovery,
}


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def run_hotpath(repeats: int = DEFAULT_REPEATS) -> dict:
    """Time every scenario; report raw seconds and normalized scores."""
    calibration_s = calibrate(repeats)
    seconds: Dict[str, float] = {}
    for name, scenario in SCENARIOS.items():
        scenario()  # warm-up: imports, memo caches, branch predictors
        seconds[name] = min(scenario() for _ in range(repeats))
    return {
        "calibration_s": round(calibration_s, 6),
        "seconds": {
            name: round(value, 6) for name, value in seconds.items()
        },
        "scores": {
            name: round(value / calibration_s, 4)
            for name, value in seconds.items()
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
    }


def check_regression(result: dict, baseline: dict,
                     threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Failures where ``result`` is slower than ``baseline`` + threshold.

    Compares normalized scores scenario by scenario; a scenario missing
    from the baseline is skipped (it has nothing to regress against).
    Returns human-readable failure lines (empty = gate passes).
    """
    failures: List[str] = []
    base_scores = baseline.get("scores", {})
    for name, score in result.get("scores", {}).items():
        base = base_scores.get(name)
        if base is None or base <= 0:
            continue
        ratio = score / base
        if ratio > 1.0 + threshold:
            failures.append(
                "%s: score %.4f vs baseline %.4f (%.1f%% slower, "
                "threshold %.0f%%)"
                % (name, score, base, (ratio - 1.0) * 100.0,
                   threshold * 100.0)
            )
    return failures


# ----------------------------------------------------------------------
# the BENCH_hotpath.json file
# ----------------------------------------------------------------------
def load_bench_file(path: str) -> Optional[dict]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def save_bench_file(path: str, payload: dict) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def update_baseline(path: str, result: dict) -> dict:
    """Make ``result`` the committed baseline (trajectory preserved)."""
    payload = load_bench_file(path) or {}
    payload["baseline"] = result
    payload.setdefault("trajectory", [])
    save_bench_file(path, payload)
    return payload


def append_trajectory(path: str, result: dict,
                      note: str = "") -> dict:
    """Append a measurement to the perf trajectory (CI history)."""
    payload = load_bench_file(path) or {"baseline": None,
                                        "trajectory": []}
    entry = dict(result)
    if note:
        entry["note"] = note
    payload.setdefault("trajectory", []).append(entry)
    if payload.get("baseline") is None:
        # first measurement seeds the baseline
        payload["baseline"] = result
    save_bench_file(path, payload)
    return payload
