"""Markdown and ASCII-chart rendering of experiment results.

``star-bench --markdown results.md`` writes a self-contained report in
the same format as EXPERIMENTS.md; the bar charts give the figures'
visual shape directly in a terminal.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bench.tables import ExperimentTable, _format_cell

BAR_WIDTH = 40


def render_markdown_table(table: ExperimentTable) -> str:
    """One experiment as a Markdown section."""
    lines = [
        "## %s — %s" % (table.experiment_id, table.title),
        "",
        "| " + " | ".join(table.columns) + " |",
        "|" + "|".join("---" for _ in table.columns) + "|",
    ]
    for row in table.rows:
        cells = [_format_cell(row.get(column, ""))
                 for column in table.columns]
        lines.append("| " + " | ".join(cells) + " |")
    for note in table.notes:
        lines.append("")
        lines.append("> %s" % note)
    return "\n".join(lines)


def render_markdown_report(tables: Sequence[ExperimentTable],
                           title: str = "STAR reproduction results"
                           ) -> str:
    """A full Markdown report over several experiments."""
    sections = ["# %s" % title, ""]
    for table in tables:
        sections.append(render_markdown_table(table))
        sections.append("")
    return "\n".join(sections)


def render_bar_chart(table: ExperimentTable, label_column: str,
                     value_columns: Sequence[str],
                     width: int = BAR_WIDTH) -> str:
    """An ASCII grouped bar chart of numeric columns.

    Used to eyeball the figures: each row becomes a group, each value
    column a bar scaled against the chart-wide maximum.
    """
    numeric_rows: List[dict] = []
    for row in table.rows:
        if all(isinstance(row.get(column), (int, float))
               for column in value_columns):
            numeric_rows.append(row)
    if not numeric_rows:
        return "(no numeric rows to chart)"
    peak = max(
        float(row[column])
        for row in numeric_rows for column in value_columns
    )
    if peak <= 0:
        peak = 1.0
    label_width = max(
        [len(str(row.get(label_column, ""))) for row in numeric_rows]
        + [len(column) for column in value_columns]
    )
    lines = ["%s — %s" % (table.experiment_id, table.title)]
    for row in numeric_rows:
        lines.append(str(row.get(label_column, "")))
        for column in value_columns:
            value = float(row[column])
            bar = "#" * max(1, round(value / peak * width)) \
                if value > 0 else ""
            lines.append(
                "  %-*s |%s %s"
                % (label_width, column, bar, _format_cell(value))
            )
    return "\n".join(lines)
