"""Reproductions of every table and figure in the paper's evaluation.

Each ``experiment_*`` function regenerates the rows/series of one paper
result as an :class:`~repro.bench.tables.ExperimentTable`, with the
paper's reported values attached as notes so the shape comparison is
explicit. ``run_all`` produces the complete set (the content of
EXPERIMENTS.md).

================  ====================================================
experiment        paper result
================  ====================================================
``fig10``         bitmap-line writes vs WB writes (avg ~1/461)
``fig11``         write traffic normalized to WB (STAR 1.08x, Anubis 2x)
``fig12``         IPC normalized to WB (STAR ~0.98, Anubis ~0.90)
``fig13``         energy normalized to WB (STAR +4%, Anubis +46%)
``table2``        ADR bitmap-line hit ratio vs #lines in ADR
``fig14a``        dirty fraction of the metadata cache (~78%)
``fig14b``        recovery time vs metadata cache size
================  ====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.bench.runner import (
    GridKey,
    PAPER_SCHEMES,
    config_for_scale,
    geometric_mean,
    run_grid,
    run_one,
)
from repro.bench.tables import ExperimentTable
from repro.config import LINE_SIZE
from repro.sim.results import RunResult
from repro.workloads.registry import ALL_WORKLOADS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lab.bridge import LabCache

PAPER_TABLE2 = {2: 0.3285, 4: 0.4744, 8: 0.6437, 16: 0.7475, 32: 0.8219}
PAPER_FIG11 = {"star": 1.08, "anubis": 2.0}
PAPER_FIG12 = {"star": 0.98, "anubis": 0.90}
PAPER_FIG13 = {"star": 1.04, "anubis": 1.46}
PAPER_FIG14A_DIRTY = 0.78
PAPER_FIG14B = {"star_4mb_s": 0.05, "anubis_4mb_s": 0.02}


def paper_grid(scale: str = "default",
               workloads: Optional[Iterable[str]] = None,
               seed: int = 42,
               lab: Optional["LabCache"] = None
               ) -> Dict[GridKey, RunResult]:
    """The scheme x workload grid shared by Figs. 10-13 and 14(a).

    ``lab`` serves cells from (and commits misses to) a lab store —
    see :mod:`repro.lab` and ``star-bench --lab DIR``.
    """
    config = config_for_scale(scale)
    return run_grid(config, PAPER_SCHEMES, workloads, scale=scale,
                    seed=seed, lab=lab)


def _workloads_of(grid: Dict[GridKey, RunResult]) -> List[str]:
    ordered: List[str] = []
    for _scheme, workload in grid:
        if workload not in ordered:
            ordered.append(workload)
    return ordered


# ----------------------------------------------------------------------
# Fig. 10 — bitmap-line write traffic vs WB write traffic
# ----------------------------------------------------------------------
def experiment_fig10(scale: str = "default",
                     grid: Optional[Dict[GridKey, RunResult]] = None,
                     lab: Optional["LabCache"] = None
                     ) -> ExperimentTable:
    if grid is None:
        grid = paper_grid(scale, lab=lab)
    table = ExperimentTable(
        experiment_id="Fig. 10",
        title="bitmap-line writes of STAR vs WB write traffic",
        columns=["workload", "wb_writes", "bitmap_writes",
                 "wb_to_bitmap_ratio"],
        notes=[
            "paper: WB issues on average 461x more writes than STAR "
            "writes bitmap lines; the ratio depends on workload locality",
        ],
    )
    ratios = []
    for workload in _workloads_of(grid):
        star = grid[("star", workload)]
        wb = grid[("wb", workload)]
        bitmap_writes = star.bitmap_writes
        ratio = (
            wb.nvm_writes / bitmap_writes if bitmap_writes else float("inf")
        )
        if bitmap_writes:
            ratios.append(ratio)
        table.add_row(
            workload=workload,
            wb_writes=wb.nvm_writes,
            bitmap_writes=bitmap_writes,
            wb_to_bitmap_ratio=ratio,
        )
    if ratios:
        table.add_row(
            workload="average",
            wb_writes="",
            bitmap_writes="",
            wb_to_bitmap_ratio=sum(ratios) / len(ratios),
        )
    return table


# ----------------------------------------------------------------------
# Figs. 11/12/13 — normalized traffic / IPC / energy
# ----------------------------------------------------------------------
def _normalized_experiment(grid: Dict[GridKey, RunResult],
                           experiment_id: str, title: str, metric: str,
                           notes: List[str]) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=experiment_id,
        title=title,
        columns=["workload"] + PAPER_SCHEMES,
        notes=notes,
    )
    sums: Dict[str, List[float]] = {scheme: [] for scheme in PAPER_SCHEMES}
    for workload in _workloads_of(grid):
        wb = grid[("wb", workload)]
        row: Dict[str, object] = {"workload": workload}
        for scheme in PAPER_SCHEMES:
            result = grid[(scheme, workload)]
            value = getattr(result, metric)(wb)
            row[scheme] = value
            sums[scheme].append(value)
        table.add_row(**row)
    mean_row: Dict[str, object] = {"workload": "gmean"}
    for scheme in PAPER_SCHEMES:
        mean_row[scheme] = geometric_mean(sums[scheme])
    table.add_row(**mean_row)
    return table


def experiment_fig11(scale: str = "default",
                     grid: Optional[Dict[GridKey, RunResult]] = None,
                     lab: Optional["LabCache"] = None
                     ) -> ExperimentTable:
    if grid is None:
        grid = paper_grid(scale, lab=lab)
    return _normalized_experiment(
        grid, "Fig. 11", "NVM write traffic normalized to WB",
        "normalized_writes",
        [
            "paper: STAR 1.08x (array 1.21x, hash 1.34x), Anubis 2x, "
            "strict persistence up to ~9x in theory (less in practice "
            "because WB itself evicts tree nodes)",
        ],
    )


def experiment_fig12(scale: str = "default",
                     grid: Optional[Dict[GridKey, RunResult]] = None,
                     lab: Optional["LabCache"] = None
                     ) -> ExperimentTable:
    if grid is None:
        grid = paper_grid(scale, lab=lab)
    return _normalized_experiment(
        grid, "Fig. 12", "IPC normalized to WB", "normalized_ipc",
        [
            "paper: STAR ~98% of WB, Anubis ~90%; the hash workload "
            "shows the largest degradation (8% for STAR)",
        ],
    )


def experiment_fig13(scale: str = "default",
                     grid: Optional[Dict[GridKey, RunResult]] = None,
                     lab: Optional["LabCache"] = None
                     ) -> ExperimentTable:
    if grid is None:
        grid = paper_grid(scale, lab=lab)
    return _normalized_experiment(
        grid, "Fig. 13", "NVM energy normalized to WB",
        "normalized_energy",
        ["paper: STAR +4% over WB on average, Anubis +46%"],
    )


# ----------------------------------------------------------------------
# Table II — ADR bitmap-line hit ratio vs number of lines in ADR
# ----------------------------------------------------------------------
def experiment_table2(scale: str = "default",
                      adr_line_counts: Sequence[int] = (2, 4, 8, 16, 32),
                      workloads: Optional[Iterable[str]] = None,
                      seed: int = 42,
                      bitmap_fanout: int = 64,
                      lab: Optional["LabCache"] = None) -> ExperimentTable:
    """ADR pressure depends on how many bitmap lines the touched
    metadata spans; the tighter fanout keeps the span-to-ADR ratio at
    the paper's scale (see ``sim_config``'s scaling note)."""
    workloads = (
        list(workloads) if workloads is not None else list(ALL_WORKLOADS)
    )
    table = ExperimentTable(
        experiment_id="Table II",
        title="bitmap-line hit ratio vs lines held in ADR",
        columns=["adr_lines", "hit_ratio", "paper_hit_ratio"],
        notes=[
            "hit ratio averaged over all workloads; more ADR lines "
            "cover more metadata, with diminishing returns (the paper "
            "picks 16)",
        ],
    )
    from repro.bench.runner import SCALES
    spec = SCALES[scale]
    for lines in adr_line_counts:
        config = config_for_scale(
            scale, adr_bitmap_lines=lines, bitmap_fanout=bitmap_fanout,
        )
        ratios = []
        for workload in workloads:
            result = run_one(
                config, "star", workload,
                spec.operations_for(workload), seed=seed, lab=lab,
            )
            ratios.append(result.adr_hit_ratio)
        table.add_row(
            adr_lines=lines,
            hit_ratio=sum(ratios) / len(ratios),
            paper_hit_ratio=PAPER_TABLE2.get(lines, ""),
        )
    return table


# ----------------------------------------------------------------------
# Fig. 14(a) — dirty fraction of the metadata cache
# ----------------------------------------------------------------------
def experiment_fig14a(scale: str = "default",
                      grid: Optional[Dict[GridKey, RunResult]] = None,
                      lab: Optional["LabCache"] = None
                      ) -> ExperimentTable:
    if grid is None:
        grid = paper_grid(scale, lab=lab)
    table = ExperimentTable(
        experiment_id="Fig. 14(a)",
        title="dirty share of the metadata cache at crash time",
        columns=["workload", "dirty_fraction"],
        notes=["paper: ~78% of cached metadata are dirty on average; "
               "STAR only restores those, Anubis restores 100%"],
    )
    fractions = []
    for workload in _workloads_of(grid):
        star = grid[("star", workload)]
        fractions.append(star.dirty_fraction)
        table.add_row(workload=workload, dirty_fraction=star.dirty_fraction)
    if fractions:
        table.add_row(
            workload="average",
            dirty_fraction=sum(fractions) / len(fractions),
        )
    return table


# ----------------------------------------------------------------------
# Fig. 14(b) — recovery time vs metadata cache size
# ----------------------------------------------------------------------
def experiment_fig14b(scale: str = "default",
                      cache_sizes_bytes: Sequence[int] = (
                          4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024),
                      workload: str = "hash",
                      paper_cache_mbytes: Sequence[float] = (
                          0.5, 1.0, 2.0, 4.0),
                      seed: int = 42,
                      lab: Optional["LabCache"] = None) -> ExperimentTable:
    """Measured recovery time on sim-scale caches, plus the projection
    to the paper's cache sizes using the measured per-line costs."""
    from repro.bench.runner import SCALES
    spec = SCALES[scale]
    table = ExperimentTable(
        experiment_id="Fig. 14(b)",
        title="recovery time after a crash vs metadata cache size",
        columns=["kind", "cache", "star_seconds", "anubis_seconds"],
        notes=[
            "paper: STAR 0.05s vs Anubis 0.02s for a 4MB cache; both "
            "are negligible next to the 10-100s platform self-test",
            "projection uses the measured dirty fraction and per-line "
            "access counts at the 100ns/line cost the paper assumes",
        ],
    )
    from repro.sim.projection import (
        ANUBIS_ACCESSES_PER_CACHE_LINE,
        STAR_ACCESSES_PER_STALE_LINE,
        project,
    )
    star_per_stale = STAR_ACCESSES_PER_STALE_LINE
    anubis_per_slot = ANUBIS_ACCESSES_PER_CACHE_LINE
    dirty_fraction = PAPER_FIG14A_DIRTY
    for size in cache_sizes_bytes:
        config = config_for_scale(scale).with_metadata_cache_bytes(size)
        star = run_one(config, "star", workload,
                       spec.operations_for(workload), seed=seed,
                       crash_and_recover=True, lab=lab)
        anubis = run_one(config, "anubis", workload,
                         spec.operations_for(workload), seed=seed,
                         crash_and_recover=True, lab=lab)
        assert star.recovery is not None and anubis.recovery is not None
        if star.recovery.stale_lines:
            star_per_stale = (
                star.recovery.line_accesses / star.recovery.stale_lines
            )
            dirty_fraction = star.dirty_fraction
        anubis_per_slot = (
            anubis.recovery.line_accesses
            / (size // LINE_SIZE)
        )
        table.add_row(
            kind="measured",
            cache="%dKB" % (size // 1024),
            star_seconds=star.recovery.recovery_time_s,
            anubis_seconds=anubis.recovery.recovery_time_s,
        )
    for mbytes in paper_cache_mbytes:
        projection = project(
            cache_bytes=int(mbytes * 1024 * 1024),
            dirty_fraction=dirty_fraction,
            star_accesses_per_stale=star_per_stale,
            anubis_accesses_per_line=anubis_per_slot,
        )
        table.add_row(
            kind="projected",
            cache="%.1fMB" % mbytes,
            star_seconds=projection.star_seconds,
            anubis_seconds=projection.anubis_seconds,
        )
    return table


# ----------------------------------------------------------------------
# everything
# ----------------------------------------------------------------------
def run_all(scale: str = "default", seed: int = 42,
            lab: Optional["LabCache"] = None) -> List[ExperimentTable]:
    """Regenerate every table and figure of the paper's evaluation."""
    grid = paper_grid(scale, seed=seed, lab=lab)
    return [
        experiment_fig10(scale, grid),
        experiment_fig11(scale, grid),
        experiment_fig12(scale, grid),
        experiment_fig13(scale, grid),
        experiment_table2(scale, seed=seed, lab=lab),
        experiment_fig14a(scale, grid),
        experiment_fig14b(scale, seed=seed, lab=lab),
    ]
